package csr

import (
	"encoding/binary"
	"fmt"
	"sort"

	"multilogvc/internal/ssd"
)

// ValueBatch holds the values of a sparse set of vertices, loaded by
// reading only the covering pages of the value file. Sets write into the
// loaded page images; Flush writes the touched pages back. Distinct
// vertices may be Set concurrently.
type ValueBatch struct {
	vv    *Values
	pages map[int][]byte
	order []int
}

// LoadForVerts reads the value-file pages covering the given vertices
// (sorted ascending) as one batch. Returns the batch and the number of
// pages read.
func (vv *Values) LoadForVerts(verts []uint32) (*ValueBatch, int, error) {
	b := &ValueBatch{vv: vv, pages: make(map[int][]byte)}
	if len(verts) == 0 {
		return b, 0, nil
	}
	ps := vv.dev.PageSize()
	pageSet := make(map[int]bool)
	for _, v := range verts {
		if v >= vv.n {
			return nil, 0, fmt.Errorf("csr: value vertex %d out of [0,%d)", v, vv.n)
		}
		pageSet[int(int64(v)*4/int64(ps))] = true
	}
	pages := make([]int, 0, len(pageSet))
	for p := range pageSet {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	buf := make([]byte, len(pages)*ps)
	if err := vv.f.ReadPages(pages, buf); err != nil {
		return nil, 0, err
	}
	for i, p := range pages {
		b.pages[p] = buf[i*ps : (i+1)*ps]
	}
	b.order = pages
	return b, len(pages), nil
}

// Get returns v's value. v must be covered by the batch.
func (b *ValueBatch) Get(v uint32) uint32 {
	ps := b.vv.dev.PageSize()
	off := int64(v) * 4
	return binary.LittleEndian.Uint32(b.pages[int(off/int64(ps))][off%int64(ps):])
}

// Set updates v's value in the batch. v must be covered by the batch.
// Distinct vertices may be Set concurrently.
func (b *ValueBatch) Set(v uint32, val uint32) {
	ps := b.vv.dev.PageSize()
	off := int64(v) * 4
	binary.LittleEndian.PutUint32(b.pages[int(off/int64(ps))][off%int64(ps):], val)
}

// Flush writes the batch's pages back to the device in contiguous runs and
// returns the number of pages written.
func (b *ValueBatch) Flush() (int, error) {
	ps := b.vv.dev.PageSize()
	written := 0
	for i := 0; i < len(b.order); {
		j := i
		for j+1 < len(b.order) && b.order[j+1] == b.order[j]+1 {
			j++
		}
		run := make([]byte, (j-i+1)*ps)
		for k := i; k <= j; k++ {
			copy(run[(k-i)*ps:], b.pages[b.order[k]])
		}
		if err := b.vv.f.WritePageRange(b.order[i], run); err != nil {
			return written, err
		}
		written += j - i + 1
		i = j + 1
	}
	return written, nil
}

// CreateValuesFunc creates a value array of n entries where entry v is
// init(v). Used by engines to materialize per-vertex initial values.
func CreateValuesFunc(dev *ssd.Device, name string, n uint32, init func(v uint32) uint32) (*Values, error) {
	f, err := dev.OpenOrCreate(name)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(); err != nil {
		return nil, err
	}
	w := ssd.NewWriter(f)
	for v := uint32(0); v < n; v++ {
		if err := w.WriteU32(init(v)); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &Values{dev: dev, f: f, n: n}, nil
}
