package csr

import "multilogvc/internal/ssd"

// View returns a per-run view of the graph whose device IO is attributed
// to sc (see ssd.IOScope). The view shares the graph's metadata, interval
// index, and delta set with the original — structural mutations through
// any view are visible to all — and rescopes only the CSR file handles,
// so concurrent engine runs over one resident graph each account their
// own adjacency traffic. A nil scope returns g itself.
func (g *Graph) View(sc *ssd.IOScope) *Graph {
	if sc == nil {
		return g
	}
	v := *g
	v.outRow = scopedFiles(g.outRow, sc)
	v.outCol = scopedFiles(g.outCol, sc)
	v.inRow = scopedFiles(g.inRow, sc)
	v.inCol = scopedFiles(g.inCol, sc)
	v.outVal = scopedFiles(g.outVal, sc)
	v.inVal = scopedFiles(g.inVal, sc)
	return &v
}

func scopedFiles(fs []*ssd.File, sc *ssd.IOScope) []*ssd.File {
	if fs == nil {
		return nil
	}
	out := make([]*ssd.File, len(fs))
	for i, f := range fs {
		out[i] = f.Scoped(sc)
	}
	return out
}
