package csr

// Replication entry points. A primary ships its WAL's durable frame
// window verbatim (ReplicationFrames); a follower applies the shipped
// records at their ORIGINAL sequence numbers (ApplyReplicated), re-
// logging them in its own WAL via AppendAt, so everything the ingest
// plane already guarantees — replay, torn-tail truncation, crash-atomic
// merges, epoch snapshot isolation — works identically on a replica.
// Sequence numbers are identity: a seq names the same mutation on every
// node, and AppliedSeq is the single progress cursor both catch-up and
// lag reporting are driven by.

import (
	"errors"
	"fmt"

	"multilogvc/internal/wal"
)

// ErrNotDurable is returned by the replication entry points on a graph
// without a write-ahead log: there is no durable frame stream to ship.
var ErrNotDurable = errors.New("csr: graph has no write-ahead log")

// AppliedSeq returns the highest mutation sequence number applied to
// this graph — folded into the CSR files or published in the delta
// overlay. On a follower this is the replication cursor: the next frame
// it needs is AppliedSeq()+1.
func (g *Graph) AppliedSeq() uint64 {
	if g.ing == nil {
		return 0
	}
	// epoch is floored at Meta.FoldedSeq on open and only ever advances,
	// so it covers both merged and overlay history.
	return g.ing.epoch.Load()
}

// ReplicationFrames returns up to max durable WAL records starting at
// sequence number from, plus the highest durable seq (the follower's lag
// reference). Frames already folded and truncated by a merge checkpoint
// yield wal.ErrSeqGap — the follower is too far behind to catch up
// incrementally. ErrNotDurable on a graph without a WAL.
func (g *Graph) ReplicationFrames(from uint64, max int) ([]wal.Record, uint64, error) {
	ing := g.ing
	if ing == nil || ing.log == nil {
		return nil, 0, ErrNotDurable
	}
	return ing.log.Frames(from, max)
}

// ApplyReplicated applies records shipped from a primary at their
// original sequence numbers: duplicates (seq <= AppliedSeq, a reconnect
// overlap) are skipped, the remainder must extend the applied stream
// contiguously (else wal.ErrSeqGap), is made durable in this graph's own
// WAL (durable mode), inserted into the delta overlay, and published.
// Crossing mergeThreshold triggers the same crash-atomic merge as local
// ingest — which checkpoints the follower's WAL and persists FoldedSeq,
// so a follower crash never rewinds the cursor. Returns how many records
// were newly applied.
func (g *Graph) ApplyReplicated(recs []wal.Record, mergeThreshold int) (int, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	n := g.meta.NumVertices
	for _, r := range recs {
		if r.Src >= n || r.Dst >= n {
			return 0, fmt.Errorf("%w: replicated mutation (%d,%d) outside [0,%d)", ErrVertexOutOfRange, r.Src, r.Dst, n)
		}
		if r.Op != wal.OpAdd && r.Op != wal.OpDel {
			return 0, fmt.Errorf("csr: replicated record with unknown opcode %d", r.Op)
		}
	}
	ing := g.ing
	if ing == nil {
		return 0, fmt.Errorf("csr: graph view is not mutable")
	}
	ing.seqMu.Lock()
	defer ing.seqMu.Unlock()
	if ing.failed != nil {
		return 0, ing.failed
	}

	applied := ing.epoch.Load()
	skip := 0
	for skip < len(recs) && recs[skip].Seq <= applied {
		skip++ // duplicate delivery: already applied, seq is identity
	}
	recs = recs[skip:]
	if len(recs) == 0 {
		return 0, nil
	}
	if recs[0].Seq != applied+1 {
		return 0, fmt.Errorf("%w: replicated batch starts at seq %d, applied through %d", wal.ErrSeqGap, recs[0].Seq, applied)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			return 0, fmt.Errorf("%w: replicated batch not contiguous at seq %d", wal.ErrSeqGap, recs[i].Seq)
		}
	}
	if cap := ing.opts.MaxPending; cap > 0 && ing.deltas.ops+2*len(recs) > cap {
		return 0, fmt.Errorf("%w (pending %d + batch %d > cap %d)",
			ErrIngestBackpressure, ing.deltas.ops, 2*len(recs), cap)
	}

	if ing.log != nil {
		if err := ing.log.AppendAt(recs); err != nil { // blocks until durable
			return 0, err
		}
	}
	ing.nextSeq = recs[len(recs)-1].Seq

	ing.mu.Lock()
	for _, r := range recs {
		ing.deltas.insert(Mutation{Del: r.Op == wal.OpDel, Src: r.Src, Dst: r.Dst, Weight: r.W}, r.Seq, ing.maxPinned)
	}
	ing.epoch.Store(recs[len(recs)-1].Seq)
	pending := ing.deltas.ops
	ing.mu.Unlock()

	if mergeThreshold <= 0 {
		mergeThreshold = ing.opts.MergeThreshold
	}
	if mergeThreshold <= 0 {
		mergeThreshold = DefaultMergeThreshold
	}
	if pending >= mergeThreshold {
		if err := g.mergeAllLocked(); err != nil {
			return len(recs), err
		}
	}
	return len(recs), nil
}
