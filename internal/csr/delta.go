package csr

import (
	"sort"

	"multilogvc/internal/graphio"
)

// DeltaSet buffers graph structural updates (§V-E) as an epoch-ordered
// operation log overlaid on adjacency reads. Each mutation is recorded
// on both CSR sides (an out-op under its source, an in-op under its
// destination) carrying the sequence number the ingest plane assigned
// it, so a reader at epoch E applies exactly the ops with seq <= E — the
// mechanism behind snapshot isolation (Graph.Snapshot).
//
// When the buffered volume crosses the merge threshold the whole delta
// is folded into the CSR files by the crash-atomic shadow merge in
// ingest.go, which doubles as the WAL checkpoint.
//
// wpair is a pending edge endpoint with its weight.
type wpair struct {
	id, w uint32
}

// edgeOp is one buffered structural mutation as seen from one side:
// under vertex v, "add/del edge to/from id".
type edgeOp struct {
	del bool
	id  uint32
	w   uint32
	seq uint64
}

type DeltaSet struct {
	outOps map[uint32][]edgeOp // per-source pending out-edge ops, seq order
	inOps  map[uint32][]edgeOp // per-destination pending in-edge ops, seq order
	ops    int                 // buffered side-entries (2 per live mutation)
	merges int
}

func newDeltaSet() *DeltaSet {
	return &DeltaSet{
		outOps: make(map[uint32][]edgeOp),
		inOps:  make(map[uint32][]edgeOp),
	}
}

// DefaultMergeThreshold is the buffered side-entry count above which the
// delta is folded into the CSR files.
const DefaultMergeThreshold = 4096

// insert records one mutation at the given sequence number. A delete
// whose matching add is still buffered and invisible to every pinned
// snapshot (add seq > maxPinned) cancels the add physically instead of
// accumulating both ops — deleting an edge added in the same delta epoch
// must not grow the buffer.
func (d *DeltaSet) insert(m Mutation, seq, maxPinned uint64) {
	if m.Del && d.cancel(m.Src, m.Dst, maxPinned) {
		return
	}
	d.outOps[m.Src] = append(d.outOps[m.Src], edgeOp{del: m.Del, id: m.Dst, w: m.Weight, seq: seq})
	d.inOps[m.Dst] = append(d.inOps[m.Dst], edgeOp{del: m.Del, id: m.Src, w: m.Weight, seq: seq})
	d.ops += 2
}

// cancel removes the most recent buffered add of (src, dst) — and its
// in-side twin — if no pinned snapshot can still observe it. It returns
// false when the newest matching op is a delete (the add it shadowed is
// already gone or pinned) or when the add is pinned, in which case the
// caller records the delete as a regular op.
func (d *DeltaSet) cancel(src, dst uint32, maxPinned uint64) bool {
	outs := d.outOps[src]
	for i := len(outs) - 1; i >= 0; i-- {
		op := outs[i]
		if op.id != dst {
			continue
		}
		if op.del || op.seq <= maxPinned {
			return false
		}
		d.outOps[src] = append(outs[:i], outs[i+1:]...)
		if len(d.outOps[src]) == 0 {
			delete(d.outOps, src)
		}
		ins := d.inOps[dst]
		for j := len(ins) - 1; j >= 0; j-- {
			if ins[j].seq == op.seq {
				d.inOps[dst] = append(ins[:j], ins[j+1:]...)
				break
			}
		}
		if len(d.inOps[dst]) == 0 {
			delete(d.inOps, dst)
		}
		d.ops -= 2
		return true
	}
	return false
}

// clear drops every buffered op (after a full merge folded them).
func (d *DeltaSet) clear() {
	d.outOps = make(map[uint32][]edgeOp)
	d.inOps = make(map[uint32][]edgeOp)
	d.ops = 0
}

// apply overlays the ops visible at epoch on a freshly read neighbor
// list (and its weights slice, which may be nil for unweighted graphs).
// Ops replay in sequence order: an add appends an instance, a delete
// removes the most recently added matching instance (falling back to the
// base CSR instance), giving the edge list multiset semantics.
func (d *DeltaSet) apply(side uint8, v uint32, nbrs, weights []uint32, epoch uint64) ([]uint32, []uint32) {
	var ops []edgeOp
	if side == 0 {
		ops = d.outOps[v]
	} else {
		ops = d.inOps[v]
	}
	n := 0
	for _, op := range ops {
		if op.seq <= epoch {
			n++
		}
	}
	if n == 0 {
		return nbrs, weights
	}
	out := make([]uint32, 0, len(nbrs)+n)
	out = append(out, nbrs...)
	var outW []uint32
	if weights != nil {
		outW = make([]uint32, 0, len(nbrs)+n)
		outW = append(outW, weights...)
	}
	for _, op := range ops {
		if op.seq > epoch {
			continue
		}
		if !op.del {
			out = append(out, op.id)
			if outW != nil {
				outW = append(outW, op.w)
			}
			continue
		}
		for i := len(out) - 1; i >= 0; i-- {
			if out[i] == op.id {
				out = append(out[:i], out[i+1:]...)
				if outW != nil {
					outW = append(outW[:i], outW[i+1:]...)
				}
				break
			}
		}
	}
	return out, outW
}

// PendingUpdates returns the number of buffered structural update
// entries (each mutation contributes one per CSR side).
func (g *Graph) PendingUpdates() int {
	if g.ing == nil {
		return 0
	}
	g.ing.mu.RLock()
	defer g.ing.mu.RUnlock()
	return g.ing.deltas.ops
}

// Merges returns how many delta merges structural updates have triggered
// so far.
func (g *Graph) Merges() int {
	if g.ing == nil {
		return 0
	}
	g.ing.mu.RLock()
	defer g.ing.mu.RUnlock()
	return g.ing.deltas.merges
}

// AddEdge buffers the addition of directed edge (src, dst). The edge is
// visible to subsequent adjacency reads immediately (durably so when the
// graph was opened with OpenIngest); the CSR files are rewritten lazily
// once the buffered volume crosses mergeThreshold (0 for the default).
func (g *Graph) AddEdge(src, dst uint32, mergeThreshold int) error {
	return g.AddEdgeWeighted(src, dst, 1, mergeThreshold)
}

// AddEdgeWeighted is AddEdge with an explicit weight (meaningful on
// weighted graphs; ignored otherwise).
func (g *Graph) AddEdgeWeighted(src, dst, weight uint32, mergeThreshold int) error {
	return g.ApplyMutations([]Mutation{{Src: src, Dst: dst, Weight: weight}}, mergeThreshold)
}

// DelEdge buffers the removal of directed edge (src, dst). Deleting an
// edge whose add is still buffered in the same delta epoch cancels the
// buffered add rather than recording both.
func (g *Graph) DelEdge(src, dst uint32, mergeThreshold int) error {
	return g.ApplyMutations([]Mutation{{Del: true, Src: src, Dst: dst}}, mergeThreshold)
}

// RemoveEdge is DelEdge under its historical name.
func (g *Graph) RemoveEdge(src, dst uint32, mergeThreshold int) error {
	return g.DelEdge(src, dst, mergeThreshold)
}

func sortPairs(pairs []wpair) {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })
}

// CurrentEdges returns the full current edge list (CSR plus pending
// deltas), sorted. Intended for tests and tools.
func (g *Graph) CurrentEdges() ([]graphio.Edge, error) {
	var edges []graphio.Edge
	for iv := range g.meta.Intervals {
		if err := g.ReadWholeInterval(iv, func(v uint32, nbrs []uint32) {
			for _, nb := range nbrs {
				edges = append(edges, graphio.Edge{Src: v, Dst: nb})
			}
		}); err != nil {
			return nil, err
		}
	}
	graphio.SortEdges(edges)
	return edges, nil
}
