package csr

import (
	"fmt"
	"sort"

	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
)

// DeltaSet buffers graph structural updates (§V-E). Updates are kept in
// memory per interval and overlaid on adjacency reads; when an interval
// accumulates more than MergeThreshold updates its CSR files are rewritten.
// wpair is a pending edge endpoint with its weight.
type wpair struct {
	id, w uint32
}

type DeltaSet struct {
	// addOut[v] / delOut[v]: pending out-edge changes of vertex v.
	addOut map[uint32][]wpair
	delOut map[uint32]map[uint32]bool
	// addIn[v] / delIn[v]: pending in-edge changes (sources) of vertex v.
	addIn map[uint32][]wpair
	delIn map[uint32]map[uint32]bool
	// perInterval counts pending updates per interval of the affected
	// endpoint (out side uses src's interval, in side uses dst's).
	perInterval map[int]int
	merges      int
}

func newDeltaSet() *DeltaSet {
	return &DeltaSet{
		addOut:      make(map[uint32][]wpair),
		delOut:      make(map[uint32]map[uint32]bool),
		addIn:       make(map[uint32][]wpair),
		delIn:       make(map[uint32]map[uint32]bool),
		perInterval: make(map[int]int),
	}
}

// DefaultMergeThreshold is the pending-update count per interval above
// which the interval's CSR files are rewritten.
const DefaultMergeThreshold = 4096

// PendingUpdates returns the total number of buffered structural updates.
func (g *Graph) PendingUpdates() int {
	if g.deltas == nil {
		return 0
	}
	total := 0
	for _, c := range g.deltas.perInterval {
		total += c
	}
	return total
}

// Merges returns how many interval rewrites structural updates have
// triggered so far.
func (g *Graph) Merges() int {
	if g.deltas == nil {
		return 0
	}
	return g.deltas.merges
}

// AddEdge buffers the addition of directed edge (src, dst). The edge is
// visible to subsequent adjacency reads immediately; the CSR files are
// rewritten lazily once the affected interval crosses mergeThreshold
// pending updates (pass 0 for the default).
func (g *Graph) AddEdge(src, dst uint32, mergeThreshold int) error {
	return g.AddEdgeWeighted(src, dst, 1, mergeThreshold)
}

// AddEdgeWeighted is AddEdge with an explicit weight (meaningful on
// weighted graphs; ignored otherwise).
func (g *Graph) AddEdgeWeighted(src, dst, weight uint32, mergeThreshold int) error {
	if src >= g.meta.NumVertices || dst >= g.meta.NumVertices {
		return fmt.Errorf("csr: AddEdge(%d,%d) out of range n=%d", src, dst, g.meta.NumVertices)
	}
	if g.deltas == nil {
		g.deltas = newDeltaSet()
	}
	d := g.deltas
	if del, ok := d.delOut[src]; ok && del[dst] {
		delete(del, dst)
	} else {
		d.addOut[src] = append(d.addOut[src], wpair{id: dst, w: weight})
	}
	if del, ok := d.delIn[dst]; ok && del[src] {
		delete(del, src)
	} else {
		d.addIn[dst] = append(d.addIn[dst], wpair{id: src, w: weight})
	}
	return g.noteUpdate(src, dst, mergeThreshold)
}

// RemoveEdge buffers the removal of directed edge (src, dst).
func (g *Graph) RemoveEdge(src, dst uint32, mergeThreshold int) error {
	if src >= g.meta.NumVertices || dst >= g.meta.NumVertices {
		return fmt.Errorf("csr: RemoveEdge(%d,%d) out of range n=%d", src, dst, g.meta.NumVertices)
	}
	if g.deltas == nil {
		g.deltas = newDeltaSet()
	}
	d := g.deltas
	if removed := removeFromSlice(d.addOut, src, dst); !removed {
		if d.delOut[src] == nil {
			d.delOut[src] = make(map[uint32]bool)
		}
		d.delOut[src][dst] = true
	}
	if removed := removeFromSlice(d.addIn, dst, src); !removed {
		if d.delIn[dst] == nil {
			d.delIn[dst] = make(map[uint32]bool)
		}
		d.delIn[dst][src] = true
	}
	return g.noteUpdate(src, dst, mergeThreshold)
}

func removeFromSlice(m map[uint32][]wpair, key, val uint32) bool {
	s, ok := m[key]
	if !ok {
		return false
	}
	for i, x := range s {
		if x.id == val {
			m[key] = append(s[:i], s[i+1:]...)
			return true
		}
	}
	return false
}

func (g *Graph) noteUpdate(src, dst uint32, mergeThreshold int) error {
	if mergeThreshold <= 0 {
		mergeThreshold = DefaultMergeThreshold
	}
	d := g.deltas
	for _, iv := range []int{g.IntervalOf(src), g.IntervalOf(dst)} {
		d.perInterval[iv]++
		if d.perInterval[iv] >= mergeThreshold {
			if err := g.MergeInterval(iv); err != nil {
				return err
			}
		}
	}
	return nil
}

// apply overlays pending deltas on a freshly read neighbor list (and its
// weights slice, which may be nil for unweighted graphs).
func (d *DeltaSet) apply(side uint8, v uint32, nbrs, weights []uint32) ([]uint32, []uint32) {
	var adds []wpair
	var dels map[uint32]bool
	if side == 0 {
		adds, dels = d.addOut[v], d.delOut[v]
	} else {
		adds, dels = d.addIn[v], d.delIn[v]
	}
	if len(adds) == 0 && len(dels) == 0 {
		return nbrs, weights
	}
	out := make([]uint32, 0, len(nbrs)+len(adds))
	var outW []uint32
	if weights != nil {
		outW = make([]uint32, 0, len(nbrs)+len(adds))
	}
	for i, nb := range nbrs {
		if !dels[nb] {
			out = append(out, nb)
			if outW != nil {
				outW = append(outW, weights[i])
			}
		}
	}
	for _, a := range adds {
		out = append(out, a.id)
		if outW != nil {
			outW = append(outW, a.w)
		}
	}
	return out, outW
}

// MergeInterval rewrites interval iv's out- and in-CSR files with all
// pending deltas applied, then discards those deltas.
func (g *Graph) MergeInterval(iv int) error {
	if g.deltas == nil {
		return nil
	}
	interval := g.meta.Intervals[iv]

	if err := g.mergeSide(0, iv, interval); err != nil {
		return err
	}
	if err := g.mergeSide(1, iv, interval); err != nil {
		return err
	}

	d := g.deltas
	for v := interval.Lo; v < interval.Hi; v++ {
		delete(d.addOut, v)
		delete(d.delOut, v)
		delete(d.addIn, v)
		delete(d.delIn, v)
	}
	d.perInterval[iv] = 0
	d.merges++
	return g.updateMetaSizes()
}

func (g *Graph) mergeSide(side uint8, iv int, interval Interval) error {
	rowF, colF := g.outRow[iv], g.outCol[iv]
	var valF *ssd.File
	load := g.LoadOutEdgesFull
	if side == 1 {
		rowF, colF = g.inRow[iv], g.inCol[iv]
		load = g.LoadInEdgesFull
	}
	if g.meta.HasWeights {
		if side == 0 {
			valF = g.outVal[iv]
		} else {
			valF = g.inVal[iv]
		}
	}

	// Materialize the merged adjacency (delta overlay happens inside the
	// loader), then rewrite the files.
	verts := make([]uint32, 0, interval.Len())
	for v := interval.Lo; v < interval.Hi; v++ {
		verts = append(verts, v)
	}
	merged := make([][]wpair, interval.Len())
	if _, err := load(iv, verts, func(v uint32, nbrs, weights []uint32, _, _ int32) {
		pairs := make([]wpair, len(nbrs))
		for i, nb := range nbrs {
			pairs[i] = wpair{id: nb}
			if weights != nil {
				pairs[i].w = weights[i]
			}
		}
		sortPairs(pairs)
		merged[v-interval.Lo] = pairs
	}); err != nil {
		return err
	}

	if err := rowF.Truncate(); err != nil {
		return err
	}
	if err := colF.Truncate(); err != nil {
		return err
	}
	rw := ssd.NewWriter(rowF)
	cw := ssd.NewWriter(colF)
	var vw *ssd.Writer
	if valF != nil {
		if err := valF.Truncate(); err != nil {
			return err
		}
		vw = ssd.NewWriter(valF)
	}
	var off uint64
	for _, pairs := range merged {
		if err := rw.WriteU64(off); err != nil {
			return err
		}
		for _, p := range pairs {
			if err := cw.WriteU32(p.id); err != nil {
				return err
			}
			if vw != nil {
				if err := vw.WriteU32(p.w); err != nil {
					return err
				}
			}
		}
		off += uint64(len(pairs))
	}
	if err := rw.WriteU64(off); err != nil {
		return err
	}
	if err := rw.Close(); err != nil {
		return err
	}
	if vw != nil {
		if err := vw.Close(); err != nil {
			return err
		}
	}
	return cw.Close()
}

func sortPairs(pairs []wpair) {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })
}

func (g *Graph) updateMetaSizes() error {
	for i := range g.meta.Intervals {
		g.meta.OutRowPtrSize[i] = g.outRow[i].Size()
		g.meta.OutColIdxSize[i] = g.outCol[i].Size()
		g.meta.InRowPtrSize[i] = g.inRow[i].Size()
		g.meta.InColIdxSize[i] = g.inCol[i].Size()
		if g.meta.HasWeights {
			g.meta.OutValSize[i] = g.outVal[i].Size()
			g.meta.InValSize[i] = g.inVal[i].Size()
		}
	}
	// Recount edges.
	var edges uint64
	for i := range g.meta.Intervals {
		edges += uint64(g.meta.OutColIdxSize[i] / 4)
	}
	g.meta.NumEdges = edges
	return writeMeta(g.dev, g.meta.Name, g.meta)
}

// CurrentEdges returns the full current edge list (CSR plus pending
// deltas), sorted. Intended for tests and tools.
func (g *Graph) CurrentEdges() ([]graphio.Edge, error) {
	var edges []graphio.Edge
	for iv := range g.meta.Intervals {
		if err := g.ReadWholeInterval(iv, func(v uint32, nbrs []uint32) {
			for _, nb := range nbrs {
				edges = append(edges, graphio.Edge{Src: v, Dst: nb})
			}
		}); err != nil {
			return nil, err
		}
	}
	graphio.SortEdges(edges)
	return edges, nil
}
