package csr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
)

// Meta is the JSON metadata persisted alongside a graph's CSR files.
type Meta struct {
	Name        string     `json:"name"`
	NumVertices uint32     `json:"num_vertices"`
	NumEdges    uint64     `json:"num_edges"` // directed edge count
	Intervals   []Interval `json:"intervals"`
	// Sizes record logical byte lengths of each per-interval file so the
	// graph can be reopened from a disk-backed device.
	OutRowPtrSize []int64 `json:"out_rowptr_size"`
	OutColIdxSize []int64 `json:"out_colidx_size"`
	InRowPtrSize  []int64 `json:"in_rowptr_size"`
	InColIdxSize  []int64 `json:"in_colidx_size"`
	MaxOutDegree  uint32  `json:"max_out_degree"`
	MaxInDegree   uint32  `json:"max_in_degree"`
	// HasWeights marks graphs built with per-edge weights (the CSR val
	// vector of Fig 1a); the val files mirror the colidx layout.
	HasWeights bool    `json:"has_weights"`
	OutValSize []int64 `json:"out_val_size,omitempty"`
	InValSize  []int64 `json:"in_val_size,omitempty"`
	// FoldedSeq is the highest WAL sequence number folded into these CSR
	// files by a delta merge. Reopen floors the ingest epoch and the WAL's
	// next seq here: merged history must keep its sequence numbers even
	// though its frames are truncated — seqs are identity for replication.
	FoldedSeq uint64 `json:"folded_seq,omitempty"`
}

// BuildOptions configures Build.
type BuildOptions struct {
	// NumVertices overrides the inferred vertex count (max id + 1) when
	// the graph has trailing isolated vertices.
	NumVertices uint32
	// IntervalBudget is the per-interval worst-case update volume in
	// bytes (§V-A1). Defaults to 1MB.
	IntervalBudget int64
	// MsgBytes is the logged record size. Defaults to MsgBytes (12).
	MsgBytes int
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.IntervalBudget <= 0 {
		o.IntervalBudget = 1 << 20
	}
	if o.MsgBytes <= 0 {
		o.MsgBytes = MsgBytes
	}
	return o
}

func metaName(name string) string             { return name + ".meta" }
func outRowPtrName(name string, i int) string { return fmt.Sprintf("%s.out.rowptr.%d", name, i) }
func outColIdxName(name string, i int) string { return fmt.Sprintf("%s.out.colidx.%d", name, i) }
func inRowPtrName(name string, i int) string  { return fmt.Sprintf("%s.in.rowptr.%d", name, i) }
func inColIdxName(name string, i int) string  { return fmt.Sprintf("%s.in.colidx.%d", name, i) }
func outValName(name string, i int) string    { return fmt.Sprintf("%s.out.val.%d", name, i) }
func inValName(name string, i int) string     { return fmt.Sprintf("%s.in.val.%d", name, i) }

// Build writes edges to the device as an interval-partitioned CSR graph
// (both out-CSR and in-CSR) and returns the opened Graph.
//
// The edge list is treated as directed; for undirected graphs pass the
// symmetric closure (see graphio.MakeUndirected).
func Build(dev *ssd.Device, name string, edges []graphio.Edge, opts BuildOptions) (*Graph, error) {
	wedges := make([]graphio.WeightedEdge, len(edges))
	for i, e := range edges {
		wedges[i] = graphio.WeightedEdge{Src: e.Src, Dst: e.Dst}
	}
	return build(dev, name, wedges, false, opts)
}

// BuildWeighted is Build for weighted edges: per-edge weights are stored
// in val files mirroring the colidx layout (the paper's val vector).
func BuildWeighted(dev *ssd.Device, name string, wedges []graphio.WeightedEdge, opts BuildOptions) (*Graph, error) {
	kept := make([]graphio.WeightedEdge, len(wedges))
	copy(kept, wedges)
	return build(dev, name, kept, true, opts)
}

func build(dev *ssd.Device, name string, wedges []graphio.WeightedEdge, weighted bool, opts BuildOptions) (*Graph, error) {
	opts = opts.withDefaults()
	edges := graphio.Strip(wedges)
	n := graphio.NumVertices(edges)
	if opts.NumVertices > n {
		n = opts.NumVertices
	}
	if n == 0 {
		return nil, fmt.Errorf("csr: cannot build empty graph %q", name)
	}

	outDeg := graphio.OutDegrees(edges, n)
	inDeg := graphio.InDegrees(edges, n)
	ivs := Partition(inDeg, opts.MsgBytes, opts.IntervalBudget)

	meta := Meta{
		Name:        name,
		NumVertices: n,
		NumEdges:    uint64(len(edges)),
		Intervals:   ivs,
		HasWeights:  weighted,
	}
	for _, d := range outDeg {
		if d > meta.MaxOutDegree {
			meta.MaxOutDegree = d
		}
	}
	for _, d := range inDeg {
		if d > meta.MaxInDegree {
			meta.MaxInDegree = d
		}
	}

	// Out-CSR: edges sorted by (src, dst).
	graphio.SortWeighted(wedges)
	if err := writeCSRSide(dev, name, ivs, wedges, outDeg, true, weighted, &meta); err != nil {
		return nil, err
	}

	// In-CSR: edges sorted by (dst, src); colidx holds sources.
	graphio.SortWeightedByDst(wedges)
	if err := writeCSRSide(dev, name, ivs, wedges, inDeg, false, weighted, &meta); err != nil {
		return nil, err
	}

	if err := writeMeta(dev, name, &meta); err != nil {
		return nil, err
	}
	return Open(dev, name)
}

// writeCSRSide writes the per-interval rowptr/colidx (and, for weighted
// graphs, val) files for one side. For the out side, edges are sorted by
// src and colidx stores dsts; for the in side, edges are sorted by dst and
// colidx stores srcs.
func writeCSRSide(dev *ssd.Device, name string, ivs []Interval, sorted []graphio.WeightedEdge, deg []uint32, outSide, weighted bool, meta *Meta) error {
	key := func(e graphio.WeightedEdge) uint32 {
		if outSide {
			return e.Src
		}
		return e.Dst
	}
	val := func(e graphio.WeightedEdge) uint32 {
		if outSide {
			return e.Dst
		}
		return e.Src
	}
	rowName, colName, valName := inRowPtrName, inColIdxName, inValName
	if outSide {
		rowName, colName, valName = outRowPtrName, outColIdxName, outValName
	}

	pos := 0 // cursor into sorted
	for i, iv := range ivs {
		rf, err := dev.Create(rowName(name, i))
		if err != nil {
			return fmt.Errorf("csr: create rowptr: %w", err)
		}
		cf, err := dev.Create(colName(name, i))
		if err != nil {
			return fmt.Errorf("csr: create colidx: %w", err)
		}
		rw := ssd.NewWriter(rf)
		cw := ssd.NewWriter(cf)
		var vw *ssd.Writer
		var vf *ssd.File
		if weighted {
			vf, err = dev.Create(valName(name, i))
			if err != nil {
				return fmt.Errorf("csr: create val: %w", err)
			}
			vw = ssd.NewWriter(vf)
		}

		var off uint64
		for v := iv.Lo; v < iv.Hi; v++ {
			if err := rw.WriteU64(off); err != nil {
				return err
			}
			off += uint64(deg[v])
		}
		if err := rw.WriteU64(off); err != nil {
			return err
		}

		// Advance past any edges from vertices before this interval
		// (only possible for the first interval if ids were sparse).
		for pos < len(sorted) && key(sorted[pos]) < iv.Lo {
			pos++
		}
		for pos < len(sorted) && key(sorted[pos]) < iv.Hi {
			if err := cw.WriteU32(val(sorted[pos])); err != nil {
				return err
			}
			if weighted {
				if err := vw.WriteU32(sorted[pos].Weight); err != nil {
					return err
				}
			}
			pos++
		}
		if err := rw.Close(); err != nil {
			return err
		}
		if err := cw.Close(); err != nil {
			return err
		}
		if weighted {
			if err := vw.Close(); err != nil {
				return err
			}
		}
		if outSide {
			meta.OutRowPtrSize = append(meta.OutRowPtrSize, rf.Size())
			meta.OutColIdxSize = append(meta.OutColIdxSize, cf.Size())
			if weighted {
				meta.OutValSize = append(meta.OutValSize, vf.Size())
			}
		} else {
			meta.InRowPtrSize = append(meta.InRowPtrSize, rf.Size())
			meta.InColIdxSize = append(meta.InColIdxSize, cf.Size())
			if weighted {
				meta.InValSize = append(meta.InValSize, vf.Size())
			}
		}
	}
	return nil
}

func writeMeta(dev *ssd.Device, name string, meta *Meta) error {
	f, err := dev.OpenOrCreate(metaName(name))
	if err != nil {
		return err
	}
	if err := f.Truncate(); err != nil {
		return err
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	w := ssd.NewWriter(f)
	if _, err := w.Write(blob); err != nil {
		return err
	}
	return w.Close()
}

func readMeta(dev *ssd.Device, name string) (*Meta, error) {
	f, err := dev.OpenFile(metaName(name))
	if err != nil {
		return nil, fmt.Errorf("csr: graph %q not found: %w", name, err)
	}
	blob := make([]byte, f.Size())
	if err := f.ReadAt(blob, 0); err != nil {
		return nil, err
	}
	// Devices re-adopted from a backing directory only know page-aligned
	// sizes; trim the zero padding before decoding.
	blob = bytes.TrimRight(blob, "\x00")
	var meta Meta
	if err := json.Unmarshal(blob, &meta); err != nil {
		return nil, fmt.Errorf("csr: corrupt metadata for %q: %w", name, err)
	}
	return &meta, nil
}

// Remove deletes all device files belonging to the named graph.
func Remove(dev *ssd.Device, name string) error {
	meta, err := readMeta(dev, name)
	if err != nil {
		return err
	}
	for i := range meta.Intervals {
		for _, fn := range []string{
			outRowPtrName(name, i), outColIdxName(name, i),
			inRowPtrName(name, i), inColIdxName(name, i),
			outValName(name, i), inValName(name, i),
		} {
			if dev.Exists(fn) {
				if err := dev.Remove(fn); err != nil {
					return err
				}
			}
		}
	}
	return dev.Remove(metaName(name))
}

// sortU32 sorts a uint32 slice ascending.
func sortU32(s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
