package csr

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"multilogvc/internal/obsv"
	"multilogvc/internal/ssd"
	"multilogvc/internal/wal"
)

// The durable ingest plane. Three commitments, layered:
//
//  1. Durability (wal): with OpenIngest({WAL: true}), ApplyMutations
//     returns only after its mutations are framed in the write-ahead log,
//     so an acknowledged mutation survives kill -9. Crash recovery
//     replays the log into the delta overlay on the next OpenIngest.
//
//  2. Crash-atomic merges (shadow + manifest): folding the delta into
//     the CSR files rewrites every interval file plus the metadata — far
//     from atomic on its own. The merge instead writes the complete new
//     contents to a shadow file, then commits a checksummed manifest
//     (the redo record: segment sizes, new metadata, the folded WAL
//     sequence), then copies shadow segments over the primaries. A crash
//     anywhere replays cleanly: no manifest -> old state plus WAL replay;
//     valid manifest -> recovery re-runs the idempotent redo. The merge
//     doubles as the WAL's checkpoint — frames at or below the folded
//     sequence are truncated once the redo lands.
//
//  3. Snapshot isolation (epochs): every mutation carries a sequence
//     number; readers see exactly the ops at or below their epoch.
//     Graph.Snapshot pins the current epoch so a long query reads a
//     frozen graph while ingest acknowledges new mutations around it.
//     Merges defer while any snapshot is pinned (folding would collapse
//     the epochs a pinned reader still distinguishes).

// ErrIngestBackpressure is returned by ApplyMutations when accepting the
// batch would push the buffered delta past IngestOptions.MaxPending. The
// serving layer maps it to a structured 503 with Retry-After; callers
// should back off and let a merge (or snapshot release) drain the buffer.
var ErrIngestBackpressure = errors.New("csr: ingest backpressure: pending structural updates at cap")

// ErrVertexOutOfRange is returned by ApplyMutations/ApplyReplicated for a
// mutation naming a vertex at or past NumVertices — a client error (the
// serving layer maps it to a structured 400), until vertex-set growth
// extends the universe instead.
var ErrVertexOutOfRange = errors.New("csr: vertex out of range")

// Mutation is one structural edge mutation for ApplyMutations.
type Mutation struct {
	Del    bool
	Src    uint32
	Dst    uint32
	Weight uint32 // adds on weighted graphs; ignored otherwise
}

// IngestOptions configures the ingest plane of a graph opened with
// OpenIngest (a graph from Open/Build gets a volatile ingest plane with
// zero-value options).
type IngestOptions struct {
	// WAL makes mutations durable: acknowledged means framed in the
	// write-ahead log, replayed on the next OpenIngest after a crash.
	WAL bool
	// FlushEvery is the WAL group-commit window (<= 0: synchronous
	// flush per mutation batch).
	FlushEvery time.Duration
	// MaxPending caps buffered delta side-entries (two per live
	// mutation); past it ApplyMutations fails with
	// ErrIngestBackpressure. 0 = unbounded (legacy behavior).
	MaxPending int
	// MergeThreshold is the default merge trigger for mutations arriving
	// with no explicit threshold. 0 = DefaultMergeThreshold.
	MergeThreshold int
}

// ingestState is the shared mutable half of a Graph. Graph values are
// copied freely (View, Snapshot), so everything guarded by a lock lives
// behind this pointer; the copies alias it.
type ingestState struct {
	// seqMu serializes mutation submission and merges: WAL appends from
	// concurrent batches would interleave frames out of sequence order
	// otherwise. Group commit still batches the device writes.
	seqMu sync.Mutex
	// mu guards deltas, pins, and epoch publication. Readers hold it
	// shared across a whole adjacency load so a merge (exclusive) can
	// never rewrite CSR pages under a half-assembled neighbor list.
	mu     sync.RWMutex
	deltas *DeltaSet
	epoch  atomic.Uint64 // highest published (readable) sequence number

	nextSeq uint64 // volatile-mode sequence source (the WAL assigns otherwise)

	pins      map[uint64]int // pinned epoch -> snapshot count
	maxPinned uint64         // highest pinned epoch (0 when none)

	log  *wal.Log // nil in volatile mode
	opts IngestOptions

	// failed is sticky: set when a merge redo or WAL checkpoint fails
	// past the commit point, leaving in-memory state ahead of what a
	// half-applied redo guarantees on the device. Reads and mutations
	// fail classified until the graph is reopened (which re-runs the
	// idempotent redo).
	failed error
}

func newIngestState() *ingestState {
	return &ingestState{deltas: newDeltaSet(), pins: make(map[uint64]int)}
}

func ingestWALName(name string) string      { return name + ".wal" }
func ingestManifestName(name string) string { return name + ".ingest.manifest" }
func ingestShadowName(name string) string   { return name + ".ingest.shadow" }

var ingestCRC = crc32.MakeTable(crc32.Castagnoli)

// ApplyMutations applies a batch of structural mutations: validated,
// framed in the WAL as one group commit (durable mode), inserted into
// the delta overlay, and published under a single new epoch. On return
// without error the whole batch is acknowledged — durable and visible to
// subsequent reads. On error none of it is acknowledged (frames may
// still be on the device; replay may surface them after a crash, which
// only ever adds unacknowledged suffix, never loses acknowledged state).
//
// mergeThreshold bounds the buffered delta: crossing it triggers the
// crash-atomic merge (0 uses IngestOptions.MergeThreshold, then
// DefaultMergeThreshold).
func (g *Graph) ApplyMutations(ms []Mutation, mergeThreshold int) error {
	if len(ms) == 0 {
		return nil
	}
	n := g.meta.NumVertices
	for _, m := range ms {
		if m.Src >= n || m.Dst >= n {
			return fmt.Errorf("%w: mutation (%d,%d) outside [0,%d)", ErrVertexOutOfRange, m.Src, m.Dst, n)
		}
	}
	ing := g.ing
	if ing == nil {
		return fmt.Errorf("csr: graph view is not mutable")
	}
	ing.seqMu.Lock()
	defer ing.seqMu.Unlock()
	if ing.failed != nil {
		return ing.failed
	}
	if cap := ing.opts.MaxPending; cap > 0 && ing.deltas.ops+2*len(ms) > cap {
		return fmt.Errorf("%w (pending %d + batch %d > cap %d)",
			ErrIngestBackpressure, ing.deltas.ops, 2*len(ms), cap)
	}

	var first uint64
	if ing.log != nil {
		recs := make([]wal.Record, len(ms))
		for i, m := range ms {
			op := wal.OpAdd
			if m.Del {
				op = wal.OpDel
			}
			recs[i] = wal.Record{Op: op, Src: m.Src, Dst: m.Dst, W: m.Weight}
		}
		f, _, err := ing.log.Append(recs) // blocks until durable
		if err != nil {
			return err
		}
		first = f
	} else {
		first = ing.nextSeq + 1
		ing.nextSeq += uint64(len(ms))
	}

	ing.mu.Lock()
	for i, m := range ms {
		ing.deltas.insert(m, first+uint64(i), ing.maxPinned)
	}
	ing.epoch.Store(first + uint64(len(ms)) - 1)
	pending := ing.deltas.ops
	ing.mu.Unlock()

	if mergeThreshold <= 0 {
		mergeThreshold = ing.opts.MergeThreshold
	}
	if mergeThreshold <= 0 {
		mergeThreshold = DefaultMergeThreshold
	}
	if pending >= mergeThreshold {
		return g.mergeAllLocked()
	}
	return nil
}

// MergeInterval folds the buffered delta into the CSR files. The
// historical signature took one interval; the crash-atomic merge always
// folds the whole delta (the manifest commits all intervals at once), so
// iv is accepted and ignored.
func (g *Graph) MergeInterval(iv int) error {
	_ = iv
	ing := g.ing
	if ing == nil {
		return nil
	}
	ing.seqMu.Lock()
	defer ing.seqMu.Unlock()
	return g.mergeAllLocked()
}

// Epoch returns the epoch this graph value reads at: its pinned epoch
// for snapshot views, the latest published epoch otherwise.
func (g *Graph) Epoch() uint64 {
	if g.ing == nil {
		return 0
	}
	if g.pinned {
		return g.atEpoch
	}
	return g.ing.epoch.Load()
}

// Snapshot pins the current epoch and returns a frozen view: reads
// through Snapshot.Graph() see exactly the mutations published when the
// snapshot was taken, while ingest keeps acknowledging new ones. Release
// it — merges defer while any snapshot is pinned.
type Snapshot struct {
	base     *Graph
	view     *Graph
	epoch    uint64
	released atomic.Bool
}

// Snapshot pins the current epoch. See type Snapshot.
func (g *Graph) Snapshot() *Snapshot {
	ing := g.ing
	if ing == nil {
		return &Snapshot{base: g, view: g}
	}
	ing.mu.Lock()
	e := ing.epoch.Load()
	ing.pins[e]++
	if e > ing.maxPinned {
		ing.maxPinned = e
	}
	ing.mu.Unlock()
	v := *g
	v.atEpoch = e
	v.pinned = true
	return &Snapshot{base: g, view: &v, epoch: e}
}

// Graph returns the frozen view. It supports every read path (loads,
// engine runs via View, CurrentEdges) at the pinned epoch.
func (s *Snapshot) Graph() *Graph { return s.view }

// Epoch returns the pinned epoch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Release unpins the snapshot (idempotent). The view must not be read
// after Release: a subsequent merge may fold the epochs it depended on.
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	ing := s.base.ing
	if ing == nil {
		return
	}
	ing.mu.Lock()
	if n := ing.pins[s.epoch]; n <= 1 {
		delete(ing.pins, s.epoch)
	} else {
		ing.pins[s.epoch] = n - 1
	}
	ing.maxPinned = 0
	for e := range ing.pins {
		if e > ing.maxPinned {
			ing.maxPinned = e
		}
	}
	ing.mu.Unlock()
}

// IngestStats is a point-in-time snapshot of the ingest plane.
type IngestStats struct {
	Pending int    // buffered delta side-entries
	Epoch   uint64 // latest published epoch
	Merges  int    // delta merges completed
	Pins    int    // snapshots currently pinned
	Durable bool   // WAL-backed
	WAL     wal.Stats
}

// IngestStats reports the ingest plane's counters (zero-valued for a
// graph without one).
func (g *Graph) IngestStats() IngestStats {
	ing := g.ing
	if ing == nil {
		return IngestStats{}
	}
	ing.mu.RLock()
	st := IngestStats{
		Pending: ing.deltas.ops,
		Epoch:   ing.epoch.Load(),
		Merges:  ing.deltas.merges,
		Durable: ing.log != nil,
	}
	for _, c := range ing.pins {
		st.Pins += c
	}
	ing.mu.RUnlock()
	if ing.log != nil {
		st.WAL = ing.log.Stats()
	}
	return st
}

// CloseIngest flushes and closes the WAL (no-op for volatile graphs).
// Call on daemon drain so the last group-commit window lands.
func (g *Graph) CloseIngest() error {
	if g.ing == nil || g.ing.log == nil {
		return nil
	}
	return g.ing.log.Close()
}

// OpenIngest opens a graph for streaming ingest: it completes any
// interrupted merge (via Open's recovery), then — in durable mode —
// opens the WAL and replays surviving frames into the delta overlay, so
// every mutation acknowledged before a crash is visible again.
func OpenIngest(dev *ssd.Device, name string, opts IngestOptions) (*Graph, error) {
	prevS, prevIv := dev.SetStage(obsv.StageIngest, -1)
	g, err := Open(dev, name)
	dev.SetStage(prevS, prevIv)
	if err != nil {
		return nil, err
	}
	g.ing.opts = opts
	if !opts.WAL {
		return g, nil
	}
	log, recs, err := wal.Open(dev, ingestWALName(name), wal.Options{FlushEvery: opts.FlushEvery})
	if err != nil {
		return nil, err
	}
	g.ing.log = log
	// Floor the WAL's numbering at the merge checkpoint: frames 1..FoldedSeq
	// were truncated, and a restarted log must not re-issue their seqs.
	log.SetNextSeq(g.meta.FoldedSeq)
	if len(recs) > 0 {
		// Open's recovery already truncated frames a committed merge
		// folded, so everything surviving here is unmerged: replay it.
		g.ing.mu.Lock()
		for _, r := range recs {
			if r.Src >= g.meta.NumVertices || r.Dst >= g.meta.NumVertices {
				continue // a frame from a graph this isn't; skip defensively
			}
			g.ing.deltas.insert(Mutation{Del: r.Op == wal.OpDel, Src: r.Src, Dst: r.Dst, Weight: r.W}, r.Seq, 0)
		}
		g.ing.epoch.Store(recs[len(recs)-1].Seq)
		g.ing.mu.Unlock()
	}
	return g, nil
}

// ---- crash-atomic merge -------------------------------------------------

// mergePlan is the fully merged adjacency, one sorted pair list per
// vertex per side: rows[side][interval][vertex-interval.Lo].
type mergePlan struct {
	rows [2][][][]wpair
}

// ingestManifest is the merge's redo record, committed (checksummed)
// after the shadow file holds the complete new CSR contents. Its
// presence and validity is THE commit point: everything after it —
// copying segments over the primaries, rewriting the meta, truncating
// the WAL — is idempotent redo that recovery re-runs from scratch.
type ingestManifest struct {
	FoldedSeq uint64  `json:"folded_seq"` // WAL frames <= this are folded in
	ShadowLen int64   `json:"shadow_len"`
	ShadowCRC uint32  `json:"shadow_crc"`
	Segments  []int64 `json:"segments"` // per-file byte lengths, traversal order
	Meta      *Meta   `json:"meta"`     // complete post-merge metadata
}

const ingestManifestMagic = "MLIM"

// mergeAllLocked folds the whole buffered delta into the CSR files under
// the shadow/manifest protocol. Caller holds ing.seqMu. Skipped (not an
// error) while the delta is empty or a snapshot is pinned.
func (g *Graph) mergeAllLocked() error {
	ing := g.ing
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.failed != nil {
		return ing.failed
	}
	if ing.deltas.ops == 0 {
		return nil
	}
	if len(ing.pins) > 0 {
		// A pinned snapshot still distinguishes epochs the fold would
		// collapse; defer to the next trigger after release. MaxPending
		// keeps deferral honest (backpressure instead of unbounded maps).
		return nil
	}
	prevS, prevIv := g.dev.SetStage(obsv.StageIngest, -1)
	defer g.dev.SetStage(prevS, prevIv)

	foldedSeq := ing.epoch.Load()
	plan, err := g.buildMergePlan(foldedSeq)
	if err != nil {
		return err // nothing written yet; state intact
	}
	if err := g.writeShadowAndManifest(plan, foldedSeq); err != nil {
		return err // manifest not committed; old state + WAL replay intact
	}
	// Commit point passed: from here every failure is sticky — in-memory
	// state can no longer be trusted to match a half-applied redo, and a
	// reopen re-runs the redo from the manifest.
	man, err := redoIngestManifest(g.dev, g.meta.Name)
	if err == nil && man == nil {
		err = fmt.Errorf("csr: merge manifest vanished before redo")
	}
	if err != nil {
		ing.failed = fmt.Errorf("csr: merge redo failed (reopen to recover): %w", err)
		return ing.failed
	}
	// Update only the fields a merge can change, under the exclusive
	// lock this function holds. Immutable fields (Name, NumVertices,
	// Intervals, HasWeights) stay byte-identical, so lock-free readers
	// of those never observe a write. Shared by every view via g.meta.
	g.meta.NumEdges = man.Meta.NumEdges
	g.meta.OutRowPtrSize = man.Meta.OutRowPtrSize
	g.meta.OutColIdxSize = man.Meta.OutColIdxSize
	g.meta.InRowPtrSize = man.Meta.InRowPtrSize
	g.meta.InColIdxSize = man.Meta.InColIdxSize
	g.meta.OutValSize = man.Meta.OutValSize
	g.meta.InValSize = man.Meta.InValSize
	g.meta.FoldedSeq = man.Meta.FoldedSeq
	if ing.log != nil {
		if err := ing.log.TruncateThrough(foldedSeq); err != nil {
			ing.failed = fmt.Errorf("csr: WAL checkpoint failed (reopen to recover): %w", err)
			return ing.failed
		}
	}
	if err := truncateDeviceFile(g.dev, ingestManifestName(g.meta.Name)); err != nil {
		ing.failed = fmt.Errorf("csr: merge manifest retire failed (reopen to recover): %w", err)
		return ing.failed
	}
	// A shadow without a manifest is inert; freeing it is best-effort.
	_ = truncateDeviceFile(g.dev, ingestShadowName(g.meta.Name))

	ing.deltas.clear()
	ing.deltas.merges++
	obsv.Live().IngestMerges.Add(1)
	return nil
}

// buildMergePlan materializes the merged adjacency of every interval at
// foldedSeq: base CSR read through a raw (lock- and overlay-free) view —
// the caller holds ing.mu exclusively — with the delta applied
// explicitly. Memory is O(edges); merges are threshold-bounded, and the
// out-of-core read paths stay untouched while this runs.
func (g *Graph) buildMergePlan(foldedSeq uint64) (*mergePlan, error) {
	raw := *g
	raw.ing = nil
	deltas := g.ing.deltas
	plan := &mergePlan{}
	for side := uint8(0); side < 2; side++ {
		plan.rows[side] = make([][][]wpair, len(g.meta.Intervals))
		for iv, interval := range g.meta.Intervals {
			verts := make([]uint32, 0, interval.Len())
			for v := interval.Lo; v < interval.Hi; v++ {
				verts = append(verts, v)
			}
			rows := make([][]wpair, interval.Len())
			visit := func(v uint32, nbrs, weights []uint32, _, _ int32) {
				nbrs, weights = deltas.apply(side, v, nbrs, weights, foldedSeq)
				pairs := make([]wpair, len(nbrs))
				for i, nb := range nbrs {
					pairs[i] = wpair{id: nb}
					if weights != nil {
						pairs[i].w = weights[i]
					}
				}
				sortPairs(pairs)
				rows[v-interval.Lo] = pairs
			}
			var err error
			if side == 0 {
				_, err = raw.LoadOutEdgesFull(iv, verts, visit)
			} else {
				_, err = raw.LoadInEdgesFull(iv, verts, visit)
			}
			if err != nil {
				return nil, err
			}
			plan.rows[side][iv] = rows
		}
	}
	return plan, nil
}

// writeShadowAndManifest streams the plan into the shadow file (rowptr,
// colidx, and — weighted — val segments per interval and side, CRC32C
// accumulated over the whole stream) and then commits the manifest. The
// previous manifest is invalidated first, so a crash while the shadow is
// half-written recovers to the pre-merge state.
func (g *Graph) writeShadowAndManifest(plan *mergePlan, foldedSeq uint64) error {
	name := g.meta.Name
	if err := truncateDeviceFile(g.dev, ingestManifestName(name)); err != nil {
		return err
	}
	sf, err := g.dev.OpenOrCreate(ingestShadowName(name))
	if err != nil {
		return err
	}
	if err := sf.Truncate(); err != nil {
		return err
	}
	w := ssd.NewWriter(sf)
	var crc uint32
	write := func(b []byte) error {
		crc = crc32.Update(crc, ingestCRC, b)
		_, err := w.Write(b)
		return err
	}

	newMeta := *g.meta
	newMeta.FoldedSeq = foldedSeq
	newMeta.OutRowPtrSize = make([]int64, len(g.meta.Intervals))
	newMeta.OutColIdxSize = make([]int64, len(g.meta.Intervals))
	newMeta.InRowPtrSize = make([]int64, len(g.meta.Intervals))
	newMeta.InColIdxSize = make([]int64, len(g.meta.Intervals))
	if g.meta.HasWeights {
		newMeta.OutValSize = make([]int64, len(g.meta.Intervals))
		newMeta.InValSize = make([]int64, len(g.meta.Intervals))
	}

	var segs []int64
	for iv := range g.meta.Intervals {
		for side := 0; side < 2; side++ {
			rows := plan.rows[side][iv]
			rb := make([]byte, 0, (len(rows)+1)*8)
			var off uint64
			for _, pairs := range rows {
				rb = binary.LittleEndian.AppendUint64(rb, off)
				off += uint64(len(pairs))
			}
			rb = binary.LittleEndian.AppendUint64(rb, off)
			cb := make([]byte, 0, off*4)
			var vb []byte
			for _, pairs := range rows {
				for _, p := range pairs {
					cb = binary.LittleEndian.AppendUint32(cb, p.id)
					if g.meta.HasWeights {
						vb = binary.LittleEndian.AppendUint32(vb, p.w)
					}
				}
			}
			if err := write(rb); err != nil {
				return err
			}
			segs = append(segs, int64(len(rb)))
			if err := write(cb); err != nil {
				return err
			}
			segs = append(segs, int64(len(cb)))
			if side == 0 {
				newMeta.OutRowPtrSize[iv] = int64(len(rb))
				newMeta.OutColIdxSize[iv] = int64(len(cb))
			} else {
				newMeta.InRowPtrSize[iv] = int64(len(rb))
				newMeta.InColIdxSize[iv] = int64(len(cb))
			}
			if g.meta.HasWeights {
				if err := write(vb); err != nil {
					return err
				}
				segs = append(segs, int64(len(vb)))
				if side == 0 {
					newMeta.OutValSize[iv] = int64(len(vb))
				} else {
					newMeta.InValSize[iv] = int64(len(vb))
				}
			}
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	var edges uint64
	for _, sz := range newMeta.OutColIdxSize {
		edges += uint64(sz / 4)
	}
	newMeta.NumEdges = edges

	man := ingestManifest{
		FoldedSeq: foldedSeq,
		ShadowLen: w.Offset(),
		ShadowCRC: crc,
		Segments:  segs,
		Meta:      &newMeta,
	}
	return writeIngestManifest(g.dev, name, &man)
}

// segmentFiles returns the primary file names of interval iv in the
// shadow's traversal order.
func segmentFiles(name string, iv int, weighted bool) []string {
	fns := []string{outRowPtrName(name, iv), outColIdxName(name, iv)}
	if weighted {
		fns = append(fns, outValName(name, iv))
	}
	fns = append(fns, inRowPtrName(name, iv), inColIdxName(name, iv))
	if weighted {
		fns = append(fns, inValName(name, iv))
	}
	return fns
}

// redoIngestManifest performs the merge's redo if a valid manifest is
// present: verify the shadow, copy its segments over the primary CSR
// files, rewrite the meta. Idempotent — recovery and the in-process
// merge both run it, so the recovery path is exercised on every merge,
// not only after crashes. Returns (nil, nil) when there is no valid
// manifest (no interrupted merge).
func redoIngestManifest(dev *ssd.Device, name string) (*ingestManifest, error) {
	man, ok, err := readIngestManifest(dev, ingestManifestName(name))
	if err != nil || !ok {
		return nil, err
	}
	sf, err := dev.OpenFile(ingestShadowName(name))
	if err != nil {
		return nil, fmt.Errorf("csr: merge manifest without shadow: %w", err)
	}
	buf := make([]byte, man.ShadowLen)
	if err := sf.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("csr: merge shadow read: %w", err)
	}
	if crc32.Checksum(buf, ingestCRC) != man.ShadowCRC {
		return nil, fmt.Errorf("csr: merge shadow of %q failed checksum: %w", name, ssd.ErrCorruptPage)
	}
	var off int64
	si := 0
	for iv := range man.Meta.Intervals {
		for _, fn := range segmentFiles(name, iv, man.Meta.HasWeights) {
			if si >= len(man.Segments) {
				return nil, fmt.Errorf("csr: merge manifest of %q truncated segment list", name)
			}
			n := man.Segments[si]
			si++
			if off+n > man.ShadowLen {
				return nil, fmt.Errorf("csr: merge manifest of %q overruns shadow", name)
			}
			if err := rewriteDeviceFile(dev, fn, buf[off:off+n]); err != nil {
				return nil, err
			}
			off += n
		}
	}
	if si != len(man.Segments) || off != man.ShadowLen {
		return nil, fmt.Errorf("csr: merge manifest of %q segment mismatch", name)
	}
	if err := writeMeta(dev, name, man.Meta); err != nil {
		return nil, err
	}
	return man, nil
}

// recoverIngest completes an interrupted merge: redo from the manifest,
// checkpoint the WAL through the folded sequence, then retire the
// manifest. Every step is idempotent; a crash inside recovery recovers.
// Called by Open so even non-ingest opens see crash-consistent state.
func recoverIngest(dev *ssd.Device, name string) error {
	man, err := redoIngestManifest(dev, name)
	if err != nil {
		return err
	}
	if man == nil {
		return nil
	}
	if dev.Exists(ingestWALName(name)) {
		l, _, err := wal.Open(dev, ingestWALName(name), wal.Options{})
		if err != nil {
			return err
		}
		if err := l.TruncateThrough(man.FoldedSeq); err != nil {
			return err
		}
		if err := l.Close(); err != nil {
			return err
		}
	}
	if err := truncateDeviceFile(dev, ingestManifestName(name)); err != nil {
		return err
	}
	_ = truncateDeviceFile(dev, ingestShadowName(name))
	return nil
}

// writeIngestManifest frames the manifest — magic, payload length,
// JSON payload, CRC32C over all prior bytes — and writes it as one
// page batch. The frame is self-validating: a torn or stale manifest
// fails the checksum and reads as "no manifest".
func writeIngestManifest(dev *ssd.Device, name string, man *ingestManifest) error {
	payload, err := json.Marshal(man)
	if err != nil {
		return err
	}
	frame := make([]byte, 0, len(ingestManifestMagic)+8+len(payload))
	frame = append(frame, ingestManifestMagic...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame, ingestCRC))
	return rewriteDeviceFile(dev, ingestManifestName(name), frame)
}

// readIngestManifest returns (manifest, true) when the named file holds
// a frame with a valid magic, length, and checksum; (nil, false) when
// the file is missing, empty, torn, or stale. Device read errors (a
// corrupt page under the frame) propagate.
func readIngestManifest(dev *ssd.Device, fn string) (*ingestManifest, bool, error) {
	if !dev.Exists(fn) {
		return nil, false, nil
	}
	f, err := dev.OpenFile(fn)
	if err != nil {
		return nil, false, nil
	}
	np := f.NumPages()
	if np == 0 {
		return nil, false, nil
	}
	buf := make([]byte, np*dev.PageSize())
	if err := f.ReadPageRange(0, np, buf); err != nil {
		return nil, false, fmt.Errorf("csr: merge manifest read: %w", err)
	}
	hdr := len(ingestManifestMagic) + 4
	if len(buf) < hdr+4 || string(buf[:len(ingestManifestMagic)]) != ingestManifestMagic {
		return nil, false, nil
	}
	plen := int(binary.LittleEndian.Uint32(buf[len(ingestManifestMagic):]))
	if plen < 0 || hdr+plen+4 > len(buf) {
		return nil, false, nil
	}
	want := binary.LittleEndian.Uint32(buf[hdr+plen:])
	if crc32.Checksum(buf[:hdr+plen], ingestCRC) != want {
		return nil, false, nil
	}
	var man ingestManifest
	if err := json.Unmarshal(buf[hdr:hdr+plen], &man); err != nil {
		return nil, false, nil
	}
	if man.Meta == nil {
		return nil, false, nil
	}
	return &man, true, nil
}

// rewriteDeviceFile replaces fn's contents with data (page-padded) and
// fixes its logical size.
func rewriteDeviceFile(dev *ssd.Device, fn string, data []byte) error {
	f, err := dev.OpenOrCreate(fn)
	if err != nil {
		return err
	}
	if err := f.Truncate(); err != nil {
		return err
	}
	if len(data) > 0 {
		ps := dev.PageSize()
		padded := (len(data) + ps - 1) / ps * ps
		buf := make([]byte, padded)
		copy(buf, data)
		if err := f.WritePageRange(0, buf); err != nil {
			return err
		}
	}
	f.SetSize(int64(len(data)))
	return nil
}

// truncateDeviceFile empties fn if it exists (creating nothing).
func truncateDeviceFile(dev *ssd.Device, fn string) error {
	if !dev.Exists(fn) {
		return nil
	}
	f, err := dev.OpenFile(fn)
	if err != nil {
		return nil
	}
	return f.Truncate()
}
