package csr

import (
	"encoding/binary"
	"fmt"

	"multilogvc/internal/ssd"
)

// Values is an on-device array of one uint32 per vertex (vertex values in
// the vertex-centric model). Engines load and store contiguous ranges —
// the vertices of the interval being processed — with page-batched IO.
type Values struct {
	dev *ssd.Device
	f   *ssd.File
	n   uint32
}

// CreateValues creates (or resets) a value array of n entries, all
// initialized to init.
func CreateValues(dev *ssd.Device, name string, n uint32, init uint32) (*Values, error) {
	f, err := dev.OpenOrCreate(name)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(); err != nil {
		return nil, err
	}
	w := ssd.NewWriter(f)
	for i := uint32(0); i < n; i++ {
		if err := w.WriteU32(init); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &Values{dev: dev, f: f, n: n}, nil
}

// OpenValues opens an existing value array of n entries.
func OpenValues(dev *ssd.Device, name string, n uint32) (*Values, error) {
	f, err := dev.OpenFile(name)
	if err != nil {
		return nil, err
	}
	return &Values{dev: dev, f: f, n: n}, nil
}

// Len returns the number of entries.
func (vv *Values) Len() uint32 { return vv.n }

// LoadRange reads values [lo, hi) as one page batch.
func (vv *Values) LoadRange(lo, hi uint32) ([]uint32, error) {
	if lo > hi || hi > vv.n {
		return nil, fmt.Errorf("csr: value range [%d,%d) out of [0,%d)", lo, hi, vv.n)
	}
	if lo == hi {
		return nil, nil
	}
	ps := vv.dev.PageSize()
	bLo, bHi := int64(lo)*4, int64(hi)*4
	pLo, pHi := int(bLo/int64(ps)), int((bHi-1)/int64(ps))
	buf := make([]byte, (pHi-pLo+1)*ps)
	if err := vv.f.ReadPageRange(pLo, pHi-pLo+1, buf); err != nil {
		return nil, err
	}
	out := make([]uint32, hi-lo)
	base := bLo - int64(pLo)*int64(ps)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[base+int64(i)*4:])
	}
	return out, nil
}

// StoreRange writes vals back to positions [lo, lo+len(vals)) with a
// read-modify-write of the boundary pages.
func (vv *Values) StoreRange(lo uint32, vals []uint32) error {
	if len(vals) == 0 {
		return nil
	}
	hi := lo + uint32(len(vals))
	if hi > vv.n {
		return fmt.Errorf("csr: value store [%d,%d) out of [0,%d)", lo, hi, vv.n)
	}
	ps := vv.dev.PageSize()
	bLo, bHi := int64(lo)*4, int64(hi)*4
	pLo, pHi := int(bLo/int64(ps)), int((bHi-1)/int64(ps))
	nPages := pHi - pLo + 1
	buf := make([]byte, nPages*ps)
	// RMW: fetch boundary pages when the range does not cover them fully.
	if bLo%int64(ps) != 0 {
		if err := vv.f.ReadPage(pLo, buf[:ps]); err != nil {
			return err
		}
	}
	if bHi%int64(ps) != 0 && (nPages > 1 || bLo%int64(ps) == 0) {
		if err := vv.f.ReadPage(pHi, buf[(nPages-1)*ps:]); err != nil {
			return err
		}
	}
	base := bLo - int64(pLo)*int64(ps)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[base+int64(i)*4:], v)
	}
	return vv.f.WritePageRange(pLo, buf)
}

// LoadAll reads the whole array. Intended for result extraction after a
// run, not for per-superstep use.
func (vv *Values) LoadAll() ([]uint32, error) {
	return vv.LoadRange(0, vv.n)
}
