package csr

import (
	"encoding/binary"
	"fmt"

	"multilogvc/internal/ssd"
)

// Values is an on-device array of vertex values (uint32 slots). The
// common shape is one slot per vertex; a lane-strided array (see
// CreateValuesLanesFunc) holds lanes slots per vertex, laid out
// slot(v, lane) = v*lanes + lane, so the slots of a contiguous vertex
// range stay contiguous on the device — multi-source query batching pays
// the same page locality as a single-source run. Engines load and store
// covering pages with page-batched IO.
type Values struct {
	dev   *ssd.Device
	f     *ssd.File
	n     uint32
	lanes uint32 // slots per vertex; 0 reads as 1 (single-lane)
}

// laneCount normalizes the zero value to one lane.
func (vv *Values) laneCount() uint32 {
	if vv.lanes == 0 {
		return 1
	}
	return vv.lanes
}

// Lanes returns the number of value slots per vertex.
func (vv *Values) Lanes() int { return int(vv.laneCount()) }

// slots returns the total slot count (n vertices × lanes).
func (vv *Values) slots() uint32 { return vv.n * vv.laneCount() }

// Scoped returns a view of the value array whose device IO is attributed
// to sc (see ssd.IOScope). The underlying data is shared.
func (vv *Values) Scoped(sc *ssd.IOScope) *Values {
	w := *vv
	w.f = vv.f.Scoped(sc)
	return &w
}

// CreateValues creates (or resets) a value array of n entries, all
// initialized to init.
func CreateValues(dev *ssd.Device, name string, n uint32, init uint32) (*Values, error) {
	f, err := dev.OpenOrCreate(name)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(); err != nil {
		return nil, err
	}
	w := ssd.NewWriter(f)
	for i := uint32(0); i < n; i++ {
		if err := w.WriteU32(init); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &Values{dev: dev, f: f, n: n}, nil
}

// OpenValues opens an existing value array of n entries.
func OpenValues(dev *ssd.Device, name string, n uint32) (*Values, error) {
	f, err := dev.OpenFile(name)
	if err != nil {
		return nil, err
	}
	return &Values{dev: dev, f: f, n: n}, nil
}

// Len returns the number of entries.
func (vv *Values) Len() uint32 { return vv.n }

// LoadRange reads value slots [lo, hi) as one page batch. On a
// single-lane array slots are vertices; on a lane-strided array callers
// address raw slots (vertex v's lanes occupy [v*lanes, (v+1)*lanes)).
func (vv *Values) LoadRange(lo, hi uint32) ([]uint32, error) {
	if lo > hi || hi > vv.slots() {
		return nil, fmt.Errorf("csr: value range [%d,%d) out of [0,%d)", lo, hi, vv.slots())
	}
	if lo == hi {
		return nil, nil
	}
	ps := vv.dev.PageSize()
	bLo, bHi := int64(lo)*4, int64(hi)*4
	pLo, pHi := int(bLo/int64(ps)), int((bHi-1)/int64(ps))
	buf := make([]byte, (pHi-pLo+1)*ps)
	if err := vv.f.ReadPageRange(pLo, pHi-pLo+1, buf); err != nil {
		return nil, err
	}
	out := make([]uint32, hi-lo)
	base := bLo - int64(pLo)*int64(ps)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[base+int64(i)*4:])
	}
	return out, nil
}

// StoreRange writes vals back to positions [lo, lo+len(vals)) with a
// read-modify-write of the boundary pages.
func (vv *Values) StoreRange(lo uint32, vals []uint32) error {
	if len(vals) == 0 {
		return nil
	}
	hi := lo + uint32(len(vals))
	if hi > vv.slots() {
		return fmt.Errorf("csr: value store [%d,%d) out of [0,%d)", lo, hi, vv.slots())
	}
	ps := vv.dev.PageSize()
	bLo, bHi := int64(lo)*4, int64(hi)*4
	pLo, pHi := int(bLo/int64(ps)), int((bHi-1)/int64(ps))
	nPages := pHi - pLo + 1
	buf := make([]byte, nPages*ps)
	// RMW: fetch boundary pages when the range does not cover them fully.
	if bLo%int64(ps) != 0 {
		if err := vv.f.ReadPage(pLo, buf[:ps]); err != nil {
			return err
		}
	}
	if bHi%int64(ps) != 0 && (nPages > 1 || bLo%int64(ps) == 0) {
		if err := vv.f.ReadPage(pHi, buf[(nPages-1)*ps:]); err != nil {
			return err
		}
	}
	base := bLo - int64(pLo)*int64(ps)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[base+int64(i)*4:], v)
	}
	return vv.f.WritePageRange(pLo, buf)
}

// LoadAll reads the whole array (every slot of every lane). Intended for
// result extraction after a run, not for per-superstep use.
func (vv *Values) LoadAll() ([]uint32, error) {
	return vv.LoadRange(0, vv.slots())
}
