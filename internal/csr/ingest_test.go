package csr

import (
	"errors"
	"math/rand"
	"testing"

	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
)

// oracle is a brute-force multiset adjacency: the reference the ingest
// plane is checked against. Mutations apply with the delta overlay's
// semantics — an add appends an instance, a del removes one matching
// instance if present.
type oracle map[graphio.Edge]int

func (o oracle) apply(m Mutation) {
	e := graphio.Edge{Src: m.Src, Dst: m.Dst}
	if !m.Del {
		o[e]++
		return
	}
	if o[e] > 0 {
		o[e]--
		if o[e] == 0 {
			delete(o, e)
		}
	}
}

func (o oracle) edges() []graphio.Edge {
	var out []graphio.Edge
	for e, c := range o {
		for i := 0; i < c; i++ {
			out = append(out, e)
		}
	}
	graphio.SortEdges(out)
	return out
}

func checkOracle(t *testing.T, g *Graph, o oracle, ctx string) {
	t.Helper()
	got, err := g.CurrentEdges()
	if err != nil {
		t.Fatalf("%s: CurrentEdges: %v", ctx, err)
	}
	want := o.edges()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges, want %d\ngot:  %v\nwant: %v", ctx, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: edge %d = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

func randMut(rng *rand.Rand, n uint32) Mutation {
	return Mutation{
		Del: rng.Intn(2) == 1,
		Src: uint32(rng.Intn(int(n))),
		Dst: uint32(rng.Intn(int(n))),
	}
}

// TestIngestOracleProperty drives random mutation batches against the
// oracle across the full lifecycle: overlay reads, snapshot pin/release,
// threshold and explicit merges, and — on a disk-backed device — a
// simulated crash (reopen without Close) with WAL replay. The durable
// graph must match the oracle at every probe.
func TestIngestOracleProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		open := func() (*ssd.Device, *Graph) {
			dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
			g, err := OpenIngest(dev, "g", IngestOptions{WAL: true, MergeThreshold: 1 << 30})
			if err != nil {
				t.Fatalf("seed %d: OpenIngest: %v", seed, err)
			}
			return dev, g
		}
		base := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
		{
			dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
			if _, err := Build(dev, "g", base, BuildOptions{NumVertices: 8, IntervalBudget: 48}); err != nil {
				t.Fatalf("seed %d: build: %v", seed, err)
			}
		}
		o := oracle{}
		for _, e := range base {
			o[e]++
		}
		_, g := open()
		for step := 0; step < 30; step++ {
			ms := make([]Mutation, 1+rng.Intn(4))
			for i := range ms {
				ms[i] = randMut(rng, 8)
			}
			if err := g.ApplyMutations(ms, 1<<30); err != nil {
				t.Fatalf("seed %d step %d: apply: %v", seed, step, err)
			}
			for _, m := range ms {
				o.apply(m)
			}
			switch rng.Intn(6) {
			case 0:
				if err := g.MergeInterval(0); err != nil {
					t.Fatalf("seed %d step %d: merge: %v", seed, step, err)
				}
				if g.PendingUpdates() != 0 {
					t.Fatalf("seed %d step %d: pending after merge", seed, step)
				}
			case 1:
				snap := g.Snapshot()
				checkOracle(t, snap.Graph(), o, "snapshot view")
				snap.Release()
			case 2:
				// Crash: abandon the graph (no CloseIngest) and reopen.
				// Every acknowledged mutation must replay.
				_, g = open()
			}
			checkOracle(t, g, o, "live view")
		}
		checkOracle(t, g, o, "final")
		// One more crash/reopen, then a merge, then a cold plain Open.
		_, g = open()
		checkOracle(t, g, o, "after final replay")
		if err := g.MergeInterval(0); err != nil {
			t.Fatalf("seed %d: final merge: %v", seed, err)
		}
		dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
		g2, err := Open(dev, "g")
		if err != nil {
			t.Fatalf("seed %d: cold open: %v", seed, err)
		}
		checkOracle(t, g2, o, "cold open after merge")
	}
}

// TestSnapshotIsolation pins a snapshot, keeps mutating, and checks the
// snapshot's reads are frozen at its epoch while the live view advances.
func TestSnapshotIsolation(t *testing.T) {
	dev := testDev(t)
	g, err := Build(dev, "g", paperEdges(), BuildOptions{IntervalBudget: 3 * 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 3, 1<<30); err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	defer snap.Release()
	if err := g.AddEdge(0, 4, 1<<30); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(0, 1, 1<<30); err != nil {
		t.Fatal(err)
	}
	degSnap, err := snap.Graph().OutDegreeSlow(0)
	if err != nil || degSnap != 2 { // base {1} + pinned add of 3
		t.Fatalf("snapshot degree = %d (err %v), want 2", degSnap, err)
	}
	degLive, err := g.OutDegreeSlow(0)
	if err != nil || degLive != 2 { // {3, 4} after removing 1
		t.Fatalf("live degree = %d (err %v), want 2", degLive, err)
	}
	var snapNbrs []uint32
	_, err = snap.Graph().LoadOutEdges(g.IntervalOf(0), []uint32{0}, func(_ uint32, nbrs []uint32) {
		snapNbrs = append([]uint32(nil), nbrs...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snapNbrs) != 2 || snapNbrs[0] != 1 || snapNbrs[1] != 3 {
		t.Fatalf("snapshot neighbors = %v, want [1 3]", snapNbrs)
	}
	if snap.Epoch() == g.Epoch() {
		t.Fatalf("live epoch did not advance past pinned %d", snap.Epoch())
	}
}

// TestSnapshotDefersMerge pins that a merge cannot fold epochs a live
// snapshot still distinguishes: while pinned the merge is a no-op, and
// after release it folds.
func TestSnapshotDefersMerge(t *testing.T) {
	dev := testDev(t)
	g, err := Build(dev, "g", paperEdges(), BuildOptions{IntervalBudget: 3 * 12})
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	if err := g.AddEdge(4, 5, 1<<30); err != nil {
		t.Fatal(err)
	}
	if err := g.MergeInterval(0); err != nil {
		t.Fatal(err)
	}
	if g.PendingUpdates() == 0 {
		t.Fatal("merge folded under a pinned snapshot")
	}
	snap.Release()
	if err := g.MergeInterval(0); err != nil {
		t.Fatal(err)
	}
	if g.PendingUpdates() != 0 {
		t.Fatalf("pending after post-release merge = %d", g.PendingUpdates())
	}
}

// TestIngestBackpressure pins the bounded-memory contract: past
// MaxPending, ApplyMutations fails with ErrIngestBackpressure and the
// batch is not applied; a merge drains the buffer and admits again.
func TestIngestBackpressure(t *testing.T) {
	dev := testDev(t)
	g, err := Build(dev, "g", paperEdges(), BuildOptions{IntervalBudget: 3 * 12})
	if err != nil {
		t.Fatal(err)
	}
	g.ing.opts.MaxPending = 8 // four mutations' worth of side-entries
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(0, uint32(i%6), 1<<30); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	err = g.AddEdge(0, 5, 1<<30)
	if !errors.Is(err, ErrIngestBackpressure) {
		t.Fatalf("over-cap add: %v", err)
	}
	if g.PendingUpdates() != 8 {
		t.Fatalf("rejected batch leaked into the buffer: pending=%d", g.PendingUpdates())
	}
	if err := g.MergeInterval(0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 5, 1<<30); err != nil {
		t.Fatalf("post-merge add: %v", err)
	}
}

// TestSameEpochAddDelCancels audits the satellite fix: deleting an edge
// whose add is still buffered cancels the buffered add physically — the
// buffer shrinks back — rather than recording both ops. And with a
// pinned snapshot observing the add, cancellation must NOT happen (the
// delete is recorded instead) so the snapshot still sees the edge.
func TestSameEpochAddDelCancels(t *testing.T) {
	dev := testDev(t)
	g, err := Build(dev, "g", paperEdges(), BuildOptions{IntervalBudget: 3 * 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 3, 1<<30); err != nil {
		t.Fatal(err)
	}
	if p := g.PendingUpdates(); p != 2 {
		t.Fatalf("pending after add = %d", p)
	}
	if err := g.DelEdge(0, 3, 1<<30); err != nil {
		t.Fatal(err)
	}
	if p := g.PendingUpdates(); p != 0 {
		t.Fatalf("del of same-epoch add did not cancel: pending = %d", p)
	}

	// Same dance under a pinned snapshot: no physical cancellation.
	if err := g.AddEdge(0, 4, 1<<30); err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	defer snap.Release()
	if err := g.DelEdge(0, 4, 1<<30); err != nil {
		t.Fatal(err)
	}
	if p := g.PendingUpdates(); p != 4 {
		t.Fatalf("pinned add was cancelled: pending = %d", p)
	}
	deg, err := snap.Graph().OutDegreeSlow(0)
	if err != nil || deg != 2 {
		t.Fatalf("snapshot lost its pinned add: degree = %d (err %v)", deg, err)
	}
	degLive, err := g.OutDegreeSlow(0)
	if err != nil || degLive != 1 {
		t.Fatalf("live degree = %d (err %v), want 1", degLive, err)
	}
}

// TestCrashMidMergeRecovery sweeps an injected device failure across
// every IO of the merge and, for each crash point, reopens from the
// on-disk state: the recovered graph must contain exactly the
// acknowledged mutations — before the manifest commit because the WAL
// replays them, after it because the redo completes the merge.
func TestCrashMidMergeRecovery(t *testing.T) {
	base := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	muts := []Mutation{
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Del: true, Src: 0, Dst: 1},
		{Src: 5, Dst: 0}, {Src: 3, Dst: 4}, // duplicate instance on purpose
	}
	o := oracle{}
	for _, e := range base {
		o[e]++
	}
	for _, m := range muts {
		o.apply(m)
	}
	completed := false
	for failAt := int64(0); failAt < 400 && !completed; failAt++ {
		dir := t.TempDir()
		{
			dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
			if _, err := Build(dev, "g", base, BuildOptions{NumVertices: 8, IntervalBudget: 48}); err != nil {
				t.Fatal(err)
			}
		}
		dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
		g, err := OpenIngest(dev, "g", IngestOptions{WAL: true, MergeThreshold: 1 << 30})
		if err != nil {
			t.Fatalf("failAt %d: OpenIngest: %v", failAt, err)
		}
		if err := g.ApplyMutations(muts, 1<<30); err != nil {
			t.Fatalf("failAt %d: apply: %v", failAt, err)
		}
		dev.FailAfter(failAt, ssd.ErrInjected)
		mergeErr := g.MergeInterval(0)
		if mergeErr == nil {
			completed = true // the injection point is past the whole merge
		}
		// Crash: drop the process state, reopen from disk with a healthy
		// fresh device. Acknowledged mutations must all be there.
		dev2 := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
		g2, err := OpenIngest(dev2, "g", IngestOptions{WAL: true, MergeThreshold: 1 << 30})
		if err != nil {
			t.Fatalf("failAt %d: reopen after mergeErr=%v: %v", failAt, mergeErr, err)
		}
		checkOracle(t, g2, o, "recovered")
		// The recovered graph keeps working: merge and re-verify.
		if err := g2.MergeInterval(0); err != nil {
			t.Fatalf("failAt %d: post-recovery merge: %v", failAt, err)
		}
		checkOracle(t, g2, o, "post-recovery merge")
	}
	if !completed {
		t.Fatal("sweep never reached an uninjected merge; raise the bound")
	}
}

// TestMergeFailureIsStickyUntilReopen pins the post-commit-point
// contract: when the redo fails mid-way the in-memory graph refuses
// reads and writes (instead of serving state that may not match the
// half-applied device), and a reopen recovers.
func TestMergeFailureIsStickyUntilReopen(t *testing.T) {
	dir := t.TempDir()
	{
		dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
		if _, err := Build(dev, "g", paperEdges(), BuildOptions{IntervalBudget: 3 * 12}); err != nil {
			t.Fatal(err)
		}
	}
	dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
	g, err := OpenIngest(dev, "g", IngestOptions{WAL: true, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// Find a failure point that lands after the manifest commit: sweep
	// until the merge error reports the sticky wrapper.
	var stuck bool
	for failAt := int64(0); failAt < 400; failAt++ {
		if err := g.AddEdge(4, 5, 1<<30); err != nil {
			t.Fatalf("failAt %d: add: %v", failAt, err)
		}
		dev.FailAfter(failAt, ssd.ErrInjected)
		mergeErr := g.MergeInterval(0)
		dev.FailAfter(-1, nil)
		if mergeErr == nil {
			g, err = OpenIngest(ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir}), "g",
				IngestOptions{WAL: true, MergeThreshold: 1 << 30})
			if err != nil {
				t.Fatalf("failAt %d: reopen: %v", failAt, err)
			}
			continue
		}
		if !errors.Is(mergeErr, ssd.ErrInjected) {
			t.Fatalf("failAt %d: unexpected merge error: %v", failAt, mergeErr)
		}
		if g.ing.failed == nil {
			// Pre-commit failure: state intact, mutations must still work.
			if err := g.DelEdge(4, 5, 1<<30); err != nil {
				t.Fatalf("failAt %d: post-precommit-failure del: %v", failAt, err)
			}
			continue
		}
		stuck = true
		if err := g.AddEdge(0, 1, 1<<30); err == nil {
			t.Fatal("mutation accepted on a failed graph")
		}
		if _, err := g.OutDegreeSlow(0); err == nil {
			t.Fatal("read served on a failed graph")
		}
		break
	}
	if !stuck {
		t.Skip("no post-commit failure point reached in sweep")
	}
	g2, err := OpenIngest(ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir}), "g",
		IngestOptions{WAL: true, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatalf("reopen after sticky failure: %v", err)
	}
	if _, err := g2.OutDegreeSlow(0); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
}

// TestWeightedIngestMergeRoundTrip pins that merges preserve weights the
// delta carried, across a crash/reopen on a weighted graph.
func TestWeightedIngestMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	wedges := []graphio.WeightedEdge{
		{Src: 0, Dst: 1, Weight: 10}, {Src: 1, Dst: 2, Weight: 20}, {Src: 2, Dst: 0, Weight: 30},
	}
	{
		dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
		if _, err := BuildWeighted(dev, "g", wedges, BuildOptions{NumVertices: 4, IntervalBudget: 48}); err != nil {
			t.Fatal(err)
		}
	}
	dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
	g, err := OpenIngest(dev, "g", IngestOptions{WAL: true, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeWeighted(0, 3, 77, 1<<30); err != nil {
		t.Fatal(err)
	}
	check := func(g *Graph, ctx string) {
		t.Helper()
		var ws map[uint32]uint32
		_, err := g.LoadOutEdgesFull(g.IntervalOf(0), []uint32{0}, func(_ uint32, nbrs, weights []uint32, _, _ int32) {
			ws = make(map[uint32]uint32, len(nbrs))
			for i, nb := range nbrs {
				ws[nb] = weights[i]
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		if ws[1] != 10 || ws[3] != 77 {
			t.Fatalf("%s: weights = %v, want 1:10 3:77", ctx, ws)
		}
	}
	check(g, "overlay")
	// Crash, replay, merge, cold open: the weight must survive all three.
	dev2 := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
	g2, err := OpenIngest(dev2, "g", IngestOptions{WAL: true, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	check(g2, "replayed")
	if err := g2.MergeInterval(0); err != nil {
		t.Fatal(err)
	}
	check(g2, "merged")
	g3, err := Open(ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir}), "g")
	if err != nil {
		t.Fatal(err)
	}
	check(g3, "cold")
}

// TestIngestStats sanity-checks the stats surface end to end.
func TestIngestStats(t *testing.T) {
	dir := t.TempDir()
	{
		dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
		if _, err := Build(dev, "g", paperEdges(), BuildOptions{IntervalBudget: 3 * 12}); err != nil {
			t.Fatal(err)
		}
	}
	dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
	g, err := OpenIngest(dev, "g", IngestOptions{WAL: true, MaxPending: 100, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(4, 5, 1<<30); err != nil {
		t.Fatal(err)
	}
	st := g.IngestStats()
	if !st.Durable || st.Pending != 2 || st.Epoch != 1 || st.WAL.Appends != 1 {
		t.Fatalf("stats after one add: %+v", st)
	}
	snap := g.Snapshot()
	if st := g.IngestStats(); st.Pins != 1 {
		t.Fatalf("pins = %d", st.Pins)
	}
	snap.Release()
	if err := g.MergeInterval(0); err != nil {
		t.Fatal(err)
	}
	st = g.IngestStats()
	if st.Pending != 0 || st.Merges != 1 || st.WAL.Truncates != 1 {
		t.Fatalf("stats after merge: %+v", st)
	}
	if err := g.CloseIngest(); err != nil {
		t.Fatal(err)
	}
}
