// Package csr stores graphs on a simulated SSD in compressed sparse row
// form, partitioned by vertex interval as described in §V of the
// MultiLogVC paper.
//
// A graph named G with k intervals occupies these device files:
//
//	G.meta           JSON metadata (sizes, intervals, degrees summary)
//	G.out.rowptr.<i> uint64 row pointers for interval i's out-edges
//	G.out.colidx.<i> uint32 destination ids for interval i's out-edges
//	G.in.rowptr.<i>  uint64 row pointers for interval i's in-edges
//	G.in.colidx.<i>  uint32 source ids for interval i's in-edges
//
// Row pointers are local to the interval: interval i with vertices
// [Lo, Hi) stores Hi-Lo+1 offsets into its own colidx file.
//
// The loader (Graph) serves adjacency for a *set of active vertices* by
// reading only the covering row-pointer and column-index pages, batched —
// the key capability that distinguishes CSR storage from shard storage in
// the paper. It also reports per-page utilization so the engine can track
// read amplification (Fig 3) and feed the edge-log optimizer (Fig 9).
package csr

import "fmt"

// Interval is a contiguous vertex range [Lo, Hi).
type Interval struct {
	Lo, Hi uint32
}

// Len returns the number of vertices in the interval.
func (iv Interval) Len() uint32 { return iv.Hi - iv.Lo }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v uint32) bool { return v >= iv.Lo && v < iv.Hi }

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// MsgBytes is the size of one logged update record <dst, src, data>,
// 12 bytes as in §V-A of the paper.
const MsgBytes = 12

// Partition splits n vertices into contiguous intervals such that the
// worst-case incoming update volume of each interval — one message per
// in-edge, msgBytes each (§V-A1's conservative assumption) — fits in
// budgetBytes. Every interval holds at least one vertex even if a single
// vertex's in-degree exceeds the budget (it must be processed somehow).
func Partition(inDeg []uint32, msgBytes int, budgetBytes int64) []Interval {
	if budgetBytes <= 0 {
		budgetBytes = 1
	}
	n := uint32(len(inDeg))
	if n == 0 {
		return nil
	}
	var ivs []Interval
	lo := uint32(0)
	var acc int64
	for v := uint32(0); v < n; v++ {
		cost := int64(inDeg[v]) * int64(msgBytes)
		if v > lo && acc+cost > budgetBytes {
			ivs = append(ivs, Interval{Lo: lo, Hi: v})
			lo = v
			acc = 0
		}
		acc += cost
	}
	ivs = append(ivs, Interval{Lo: lo, Hi: n})
	return ivs
}

// IntervalIndex maps vertices to their interval in O(1) using a lookup
// table at page granularity — the paper's vId2IntervalMap.
type IntervalIndex struct {
	ivs []Interval
	// firstIv[v>>shift] is the index of the interval containing the first
	// vertex of that block; scan forward from there (blocks are 256
	// vertices, and intervals are typically much larger).
	firstIv []int32
}

const ivBlockShift = 8

// NewIntervalIndex builds the lookup structure. Intervals must be sorted,
// non-overlapping, and cover [0, n).
func NewIntervalIndex(ivs []Interval, n uint32) *IntervalIndex {
	idx := &IntervalIndex{ivs: ivs}
	blocks := int(n>>ivBlockShift) + 1
	idx.firstIv = make([]int32, blocks)
	cur := 0
	for b := 0; b < blocks; b++ {
		v := uint32(b) << ivBlockShift
		for cur < len(ivs)-1 && v >= ivs[cur].Hi {
			cur++
		}
		idx.firstIv[b] = int32(cur)
	}
	return idx
}

// Of returns the index of the interval containing v.
func (x *IntervalIndex) Of(v uint32) int {
	i := int(x.firstIv[v>>ivBlockShift])
	for i < len(x.ivs)-1 && v >= x.ivs[i].Hi {
		i++
	}
	return i
}

// Intervals returns the underlying interval slice. Callers must not
// mutate it.
func (x *IntervalIndex) Intervals() []Interval { return x.ivs }
