package csr

import (
	"errors"
	"math/rand"
	"testing"

	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
	"multilogvc/internal/wal"
)

func replicaPair(t *testing.T, seed int64) (dirP, dirF string, o oracle) {
	t.Helper()
	dirP, dirF = t.TempDir(), t.TempDir()
	base := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	for _, dir := range []string{dirP, dirF} {
		dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
		if _, err := Build(dev, "g", base, BuildOptions{NumVertices: 8, IntervalBudget: 48}); err != nil {
			t.Fatalf("build: %v", err)
		}
	}
	o = oracle{}
	for _, e := range base {
		o[e]++
	}
	return dirP, dirF, o
}

func openReplica(t *testing.T, dir string) *Graph {
	t.Helper()
	dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2, Dir: dir})
	g, err := OpenIngest(dev, "g", IngestOptions{WAL: true, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatalf("OpenIngest: %v", err)
	}
	return g
}

// TestReplicationShipApply drives a random mutation stream into a
// primary, ships it in random-size batches (with deliberate duplicate
// redelivery), applies it on a follower at the original seqs, and checks
// the follower converges to the identical edge multiset — including
// across a follower kill -9 (its own WAL replays the applied cursor).
func TestReplicationShipApply(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dirP, dirF, o := replicaPair(t, seed)
		p := openReplica(t, dirP)
		f := openReplica(t, dirF)

		for step := 0; step < 20; step++ {
			ms := make([]Mutation, 1+rng.Intn(4))
			for i := range ms {
				ms[i] = randMut(rng, 8)
			}
			if err := p.ApplyMutations(ms, 1<<30); err != nil {
				t.Fatalf("seed %d: apply: %v", seed, err)
			}
			for _, m := range ms {
				o.apply(m)
			}

			// Ship a random amount; sometimes re-request an overlap to
			// prove duplicates are skipped by seq identity.
			from := f.AppliedSeq() + 1
			if from > 2 && rng.Intn(3) == 0 {
				from -= uint64(1 + rng.Intn(2))
			}
			recs, last, err := p.ReplicationFrames(from, 1+rng.Intn(6))
			if err != nil {
				t.Fatalf("seed %d: frames: %v", seed, err)
			}
			if _, err := f.ApplyReplicated(recs, 1<<30); err != nil {
				t.Fatalf("seed %d: apply replicated: %v", seed, err)
			}
			_ = last

			if rng.Intn(5) == 0 {
				// Follower kill -9: reopen from its own disk; the cursor
				// must come back from its WAL, no frames lost or doubled.
				f = openReplica(t, dirF)
			}
		}
		// Drain the remainder and compare bit-for-bit.
		for {
			recs, last, err := p.ReplicationFrames(f.AppliedSeq()+1, 64)
			if err != nil {
				t.Fatalf("seed %d: drain frames: %v", seed, err)
			}
			if len(recs) == 0 {
				if f.AppliedSeq() < last {
					t.Fatalf("seed %d: drained but applied %d < last %d", seed, f.AppliedSeq(), last)
				}
				break
			}
			if _, err := f.ApplyReplicated(recs, 1<<30); err != nil {
				t.Fatalf("seed %d: drain apply: %v", seed, err)
			}
		}
		if f.AppliedSeq() != p.AppliedSeq() {
			t.Fatalf("seed %d: follower applied %d, primary %d", seed, f.AppliedSeq(), p.AppliedSeq())
		}
		checkOracle(t, f, o, "follower after drain")
		checkOracle(t, p, o, "primary")
	}
}

// TestReplicationGapAfterMerge leaves the follower behind, merges the
// primary (truncating the shipped window), and checks catch-up fails
// with the classified wal.ErrSeqGap instead of silently skipping frames.
func TestReplicationGapAfterMerge(t *testing.T) {
	dirP, _, _ := replicaPair(t, 0)
	p := openReplica(t, dirP)
	for i := 0; i < 6; i++ {
		if err := p.ApplyMutations([]Mutation{{Src: uint32(i % 4), Dst: uint32(i%4 + 1)}}, 1<<30); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.MergeInterval(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.ReplicationFrames(3, 0); !errors.Is(err, wal.ErrSeqGap) {
		t.Fatalf("frames below fold: err = %v, want wal.ErrSeqGap", err)
	}
	// At the fold boundary the window is empty but valid.
	recs, last, err := p.ReplicationFrames(7, 0)
	if err != nil || len(recs) != 0 || last != 6 {
		t.Fatalf("frames at boundary: %d recs, last %d, err %v", len(recs), last, err)
	}
}

// TestFoldedSeqSurvivesCrash merges (which truncates the WAL), kills the
// process, reopens, and checks the applied cursor and seq numbering
// continue from the fold instead of restarting at zero — the invariant
// replication identity depends on.
func TestFoldedSeqSurvivesCrash(t *testing.T) {
	dirP, dirF, o := replicaPair(t, 1)
	p := openReplica(t, dirP)
	ms := []Mutation{{Src: 1, Dst: 3}, {Src: 2, Dst: 0}, {Del: true, Src: 1, Dst: 2}}
	if err := p.ApplyMutations(ms, 1<<30); err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		o.apply(m)
	}
	if err := p.MergeInterval(0); err != nil {
		t.Fatal(err)
	}
	p = openReplica(t, dirP) // kill -9 + restart
	if got := p.AppliedSeq(); got != 3 {
		t.Fatalf("AppliedSeq after merge+crash = %d, want 3", got)
	}
	if err := p.ApplyMutations([]Mutation{{Src: 0, Dst: 2}}, 1<<30); err != nil {
		t.Fatal(err)
	}
	o.apply(Mutation{Src: 0, Dst: 2})
	if got := p.AppliedSeq(); got != 4 {
		t.Fatalf("seq after post-merge mutation = %d, want 4 (no reuse)", got)
	}
	checkOracle(t, p, o, "primary after merge+crash+mutate")

	// A follower that merged and crashed likewise resumes its cursor.
	f := openReplica(t, dirF)
	recs, _, err := p.ReplicationFrames(f.AppliedSeq()+1, 0)
	if err == nil {
		_, err = f.ApplyReplicated(recs, 1<<30)
	}
	if !errors.Is(err, wal.ErrSeqGap) {
		// The primary merged past the follower's cursor; the only honest
		// outcomes are a gap (classified) or a full catch-up if frames
		// survived. With the merge above, the gap is expected.
		t.Fatalf("behind-the-fold follower: err = %v, want wal.ErrSeqGap", err)
	}
}

// TestApplyReplicatedValidation covers out-of-range vertices (the
// structured bad_request path) and in-batch discontinuities.
func TestApplyReplicatedValidation(t *testing.T) {
	_, dirF, _ := replicaPair(t, 2)
	f := openReplica(t, dirF)
	if _, err := f.ApplyReplicated([]wal.Record{{Op: wal.OpAdd, Src: 99, Dst: 1, Seq: 1}}, 1<<30); !errors.Is(err, ErrVertexOutOfRange) {
		t.Fatalf("out-of-range: err = %v, want ErrVertexOutOfRange", err)
	}
	if err := f.ApplyMutations([]Mutation{{Src: 8, Dst: 0}}, 1<<30); !errors.Is(err, ErrVertexOutOfRange) {
		t.Fatalf("local out-of-range: err = %v, want ErrVertexOutOfRange", err)
	}
	// Future seq: a gap, not a silent skip.
	if _, err := f.ApplyReplicated([]wal.Record{{Op: wal.OpAdd, Src: 1, Dst: 2, Seq: 5}}, 1<<30); !errors.Is(err, wal.ErrSeqGap) {
		t.Fatalf("future seq: err = %v, want wal.ErrSeqGap", err)
	}
	// Non-contiguous batch.
	batch := []wal.Record{
		{Op: wal.OpAdd, Src: 1, Dst: 2, Seq: 1},
		{Op: wal.OpAdd, Src: 2, Dst: 3, Seq: 3},
	}
	if _, err := f.ApplyReplicated(batch, 1<<30); !errors.Is(err, wal.ErrSeqGap) {
		t.Fatalf("non-contiguous: err = %v, want wal.ErrSeqGap", err)
	}
	if f.AppliedSeq() != 0 {
		t.Fatalf("failed batches advanced the cursor to %d", f.AppliedSeq())
	}
}
