package csr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
)

func testDev(t *testing.T) *ssd.Device {
	t.Helper()
	return ssd.MustOpen(ssd.Config{PageSize: 256, Channels: 4})
}

// the example graph from the paper's Fig 1 (1-indexed there; 0-indexed
// here): edges 3->1, 6->1, 1->2, 3->2, 6->2, 6->3, 6->4, 6->5 become
// 2->0, 5->0, 0->1, 2->1, 5->1, 5->2, 5->3, 5->4.
func paperEdges() []graphio.Edge {
	return []graphio.Edge{
		{Src: 2, Dst: 0}, {Src: 5, Dst: 0},
		{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 5, Dst: 1},
		{Src: 5, Dst: 2}, {Src: 5, Dst: 3}, {Src: 5, Dst: 4},
	}
}

func TestPartition(t *testing.T) {
	inDeg := []uint32{10, 10, 10, 10}
	// Budget of 2 vertices' worth of messages.
	ivs := Partition(inDeg, 12, 2*10*12)
	if len(ivs) != 2 {
		t.Fatalf("intervals = %v, want 2", ivs)
	}
	if ivs[0] != (Interval{0, 2}) || ivs[1] != (Interval{2, 4}) {
		t.Fatalf("intervals = %v", ivs)
	}
}

func TestPartitionHugeVertex(t *testing.T) {
	// A single vertex exceeding the budget still gets an interval.
	inDeg := []uint32{1000, 1, 1}
	ivs := Partition(inDeg, 12, 100)
	if len(ivs) == 0 || ivs[0].Len() != 1 {
		t.Fatalf("intervals = %v, want first interval of 1 vertex", ivs)
	}
	// Coverage is complete and contiguous.
	var v uint32
	for _, iv := range ivs {
		if iv.Lo != v {
			t.Fatalf("gap at %d: %v", v, ivs)
		}
		v = iv.Hi
	}
	if v != 3 {
		t.Fatalf("coverage ends at %d", v)
	}
}

func TestPartitionEmpty(t *testing.T) {
	if ivs := Partition(nil, 12, 100); ivs != nil {
		t.Fatalf("empty partition = %v", ivs)
	}
}

func TestIntervalIndex(t *testing.T) {
	ivs := []Interval{{0, 5}, {5, 1000}, {1000, 1001}}
	idx := NewIntervalIndex(ivs, 1001)
	cases := []struct {
		v    uint32
		want int
	}{{0, 0}, {4, 0}, {5, 1}, {999, 1}, {1000, 2}}
	for _, c := range cases {
		if got := idx.Of(c.v); got != c.want {
			t.Errorf("Of(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Property: interval index agrees with linear search for random partitions.
func TestQuickIntervalIndex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(5000) + 10)
		deg := make([]uint32, n)
		for i := range deg {
			deg[i] = uint32(rng.Intn(20))
		}
		ivs := Partition(deg, 12, int64(rng.Intn(2000)+50))
		idx := NewIntervalIndex(ivs, n)
		for k := 0; k < 50; k++ {
			v := uint32(rng.Intn(int(n)))
			want := -1
			for i, iv := range ivs {
				if iv.Contains(v) {
					want = i
					break
				}
			}
			if idx.Of(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAndLoadPaperGraph(t *testing.T) {
	dev := testDev(t)
	g, err := Build(dev, "paper", paperEdges(), BuildOptions{IntervalBudget: 3 * 12})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d, want 6", g.NumVertices())
	}
	if g.NumEdges() != 8 {
		t.Fatalf("NumEdges = %d, want 8", g.NumEdges())
	}

	wantOut := map[uint32][]uint32{
		0: {1}, 1: {}, 2: {0, 1}, 3: {}, 4: {}, 5: {0, 1, 2, 3, 4},
	}
	wantIn := map[uint32][]uint32{
		0: {2, 5}, 1: {0, 2, 5}, 2: {5}, 3: {5}, 4: {5}, 5: {},
	}
	checkAdjacency(t, g, wantOut, wantIn)
}

func checkAdjacency(t *testing.T, g *Graph, wantOut, wantIn map[uint32][]uint32) {
	t.Helper()
	for iv := range g.Intervals() {
		interval := g.Intervals()[iv]
		var verts []uint32
		for v := interval.Lo; v < interval.Hi; v++ {
			verts = append(verts, v)
		}
		check := func(loadName string, want map[uint32][]uint32,
			load func(int, []uint32, EdgeVisitor) (LoadStats, error)) {
			got := make(map[uint32][]uint32)
			if _, err := load(iv, verts, func(v uint32, nbrs []uint32) {
				cp := make([]uint32, len(nbrs))
				copy(cp, nbrs)
				got[v] = cp
			}); err != nil {
				t.Fatalf("%s interval %d: %v", loadName, iv, err)
			}
			for _, v := range verts {
				w := want[v]
				gv := got[v]
				if len(w) != len(gv) {
					t.Fatalf("%s(%d) = %v, want %v", loadName, v, gv, w)
				}
				sortU32(gv)
				sortU32(w)
				for i := range w {
					if gv[i] != w[i] {
						t.Fatalf("%s(%d) = %v, want %v", loadName, v, gv, w)
					}
				}
			}
		}
		check("out", wantOut, g.LoadOutEdges)
		check("in", wantIn, g.LoadInEdges)
	}
}

func TestBuildIsolatedTrailingVertices(t *testing.T) {
	dev := testDev(t)
	g, err := Build(dev, "iso", []graphio.Edge{{Src: 0, Dst: 1}}, BuildOptions{NumVertices: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
	deg, err := g.OutDegreeSlow(9)
	if err != nil || deg != 0 {
		t.Fatalf("isolated vertex degree = %d err = %v", deg, err)
	}
}

func TestBuildEmptyFails(t *testing.T) {
	dev := testDev(t)
	if _, err := Build(dev, "empty", nil, BuildOptions{}); err == nil {
		t.Fatal("empty build should fail")
	}
}

func TestOpenMissing(t *testing.T) {
	dev := testDev(t)
	if _, err := Open(dev, "nope"); err == nil {
		t.Fatal("Open of missing graph should fail")
	}
}

func TestRemove(t *testing.T) {
	dev := testDev(t)
	if _, err := Build(dev, "g", paperEdges(), BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	before := len(dev.ListFiles())
	if before == 0 {
		t.Fatal("no files created")
	}
	if err := Remove(dev, "g"); err != nil {
		t.Fatal(err)
	}
	if n := len(dev.ListFiles()); n != 0 {
		t.Fatalf("%d files remain after Remove: %v", n, dev.ListFiles())
	}
}

func TestLoadOutEdgesWrongInterval(t *testing.T) {
	dev := testDev(t)
	g, _ := Build(dev, "g", paperEdges(), BuildOptions{IntervalBudget: 3 * 12})
	if len(g.Intervals()) < 2 {
		t.Skip("graph built with one interval")
	}
	_, err := g.LoadOutEdges(0, []uint32{g.Intervals()[1].Lo}, func(uint32, []uint32) {})
	if err == nil {
		t.Fatal("loading a vertex from the wrong interval should fail")
	}
}

func TestSelectiveLoadingReadsFewerPages(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 4096, Channels: 4})
	edges, err := gen.RMAT(gen.DefaultRMAT(12, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(dev, "g", edges, BuildOptions{IntervalBudget: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}

	// Load all vertices of interval 0, then just one vertex: the single
	// vertex load must touch far fewer colidx pages.
	interval := g.Intervals()[0]
	var all []uint32
	for v := interval.Lo; v < interval.Hi; v++ {
		all = append(all, v)
	}
	full, err := g.LoadOutEdges(0, all, func(uint32, []uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	single, err := g.LoadOutEdges(0, all[:1], func(uint32, []uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	if single.ColIdxPages >= full.ColIdxPages {
		t.Fatalf("selective load read %d pages, full load %d", single.ColIdxPages, full.ColIdxPages)
	}
}

func TestPageUtilizationAccounting(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 4096, Channels: 4})
	// 100 vertices in a chain: each has 1-2 edges; all edges fit on page 0.
	edges, _ := gen.Grid(1, 100)
	g, err := Build(dev, "g", edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Loading one low-degree vertex uses only a few bytes of the page.
	stats, err := g.LoadOutEdges(0, []uint32{50}, func(uint32, []uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PageUtils) != 1 {
		t.Fatalf("PageUtils = %v, want 1 page", stats.PageUtils)
	}
	u := stats.PageUtils[0]
	if u.UsedBytes != 8 { // degree 2 × 4 bytes
		t.Fatalf("UsedBytes = %d, want 8", u.UsedBytes)
	}
	if u.Key.Side != 0 || u.Key.Interval != 0 {
		t.Fatalf("PageKey = %+v", u.Key)
	}
}

// Property: CSR round-trips random edge lists exactly (both sides).
func TestQuickBuildRoundTrip(t *testing.T) {
	cnt := 0
	f := func(seed int64) bool {
		cnt++
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(60) + 2)
		m := rng.Intn(300)
		edges := make([]graphio.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graphio.Edge{
				Src: uint32(rng.Intn(int(n))), Dst: uint32(rng.Intn(int(n))),
			})
		}
		edges = graphio.Dedup(edges)
		if len(edges) == 0 {
			return true
		}
		dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2})
		g, err := Build(dev, "q", edges, BuildOptions{
			NumVertices:    n,
			IntervalBudget: int64(rng.Intn(500) + 24),
		})
		if err != nil {
			return false
		}
		got, err := g.CurrentEdges()
		if err != nil || len(got) != len(edges) {
			return false
		}
		for i := range edges {
			if got[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValues(t *testing.T) {
	dev := testDev(t)
	vv, err := CreateValues(dev, "vals", 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	all, err := vv.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range all {
		if v != 7 {
			t.Fatalf("init value[%d] = %d", i, v)
		}
	}
	// Unaligned store crossing a page boundary (page = 64 values).
	vals := []uint32{1, 2, 3, 4, 5}
	if err := vv.StoreRange(62, vals); err != nil {
		t.Fatal(err)
	}
	got, err := vv.LoadRange(60, 70)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{7, 7, 1, 2, 3, 4, 5, 7, 7, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LoadRange = %v, want %v", got, want)
		}
	}
	if _, err := vv.LoadRange(90, 101); err == nil {
		t.Fatal("out-of-range load should fail")
	}
	if err := vv.StoreRange(99, []uint32{1, 2}); err == nil {
		t.Fatal("out-of-range store should fail")
	}
	if _, err := vv.LoadRange(5, 5); err != nil {
		t.Fatal("empty range should succeed")
	}
}

func TestOpenValues(t *testing.T) {
	dev := testDev(t)
	if _, err := CreateValues(dev, "vals", 10, 3); err != nil {
		t.Fatal(err)
	}
	vv, err := OpenValues(dev, "vals", 10)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := vv.LoadRange(0, 10)
	if got[9] != 3 {
		t.Fatalf("reopened values = %v", got)
	}
	if _, err := OpenValues(dev, "missing", 10); err == nil {
		t.Fatal("OpenValues of missing file should fail")
	}
}

// Property: StoreRange/LoadRange behave like an in-memory array.
func TestQuickValues(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2})
	const n = 500
	vv, err := CreateValues(dev, "vals", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]uint32, n)
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 50; round++ {
		lo := uint32(rng.Intn(n))
		l := rng.Intn(n - int(lo))
		vals := make([]uint32, l)
		for i := range vals {
			vals[i] = rng.Uint32()
		}
		if err := vv.StoreRange(lo, vals); err != nil {
			t.Fatal(err)
		}
		copy(ref[lo:], vals)
		qlo := uint32(rng.Intn(n))
		qhi := qlo + uint32(rng.Intn(n-int(qlo)))
		got, err := vv.LoadRange(qlo, qhi)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != ref[qlo+uint32(i)] {
				t.Fatalf("round %d: value[%d] = %d, want %d", round, qlo+uint32(i), got[i], ref[qlo+uint32(i)])
			}
		}
	}
}

func TestAuxBatch(t *testing.T) {
	dev := testDev(t)
	g, err := Build(dev, "g", paperEdges(), BuildOptions{IntervalBudget: 3 * 12})
	if err != nil {
		t.Fatal(err)
	}
	aux, err := CreateAux(g, "labels", 42)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 1 has in-edges from 0, 2, 5 (3 entries).
	iv := g.IntervalOf(1)
	b, stats, err := aux.LoadBatch(iv, []uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowPtrPages == 0 {
		t.Fatal("no rowptr pages read")
	}
	s := b.Get(1)
	if len(s) != 3 {
		t.Fatalf("aux slice len = %d, want 3", len(s))
	}
	for _, v := range s {
		if v != 42 {
			t.Fatalf("aux init = %v", s)
		}
	}
	s[0], s[1], s[2] = 10, 20, 30
	if _, err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	b2, _, err := aux.LoadBatch(iv, []uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	s2 := b2.Get(1)
	if s2[0] != 10 || s2[1] != 20 || s2[2] != 30 {
		t.Fatalf("aux after flush = %v", s2)
	}
	if b2.Get(99) != nil {
		t.Fatal("Get of absent vertex should be nil")
	}
}

func TestAuxEmptyBatch(t *testing.T) {
	dev := testDev(t)
	g, _ := Build(dev, "g", paperEdges(), BuildOptions{})
	aux, err := CreateAux(g, "x", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := aux.LoadBatch(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := b.Flush(); err != nil || n != 0 {
		t.Fatalf("empty flush wrote %d pages, err %v", n, err)
	}
}

func TestStructuralUpdates(t *testing.T) {
	dev := testDev(t)
	g, err := Build(dev, "g", paperEdges(), BuildOptions{IntervalBudget: 3 * 12})
	if err != nil {
		t.Fatal(err)
	}
	// Add 4->5 and remove 5->0; reads must reflect both immediately.
	if err := g.AddEdge(4, 5, 1000); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(5, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if g.PendingUpdates() == 0 {
		t.Fatal("updates not pending")
	}
	wantOut := map[uint32][]uint32{
		0: {1}, 1: {}, 2: {0, 1}, 3: {}, 4: {5}, 5: {1, 2, 3, 4},
	}
	wantIn := map[uint32][]uint32{
		0: {2}, 1: {0, 2, 5}, 2: {5}, 3: {5}, 4: {5}, 5: {4},
	}
	checkAdjacency(t, g, wantOut, wantIn)

	// Merge everything; reads must still agree and deltas are gone.
	for iv := range g.Intervals() {
		if err := g.MergeInterval(iv); err != nil {
			t.Fatal(err)
		}
	}
	if g.PendingUpdates() != 0 {
		t.Fatalf("pending after merge = %d", g.PendingUpdates())
	}
	if g.Merges() == 0 {
		t.Fatal("merge count not recorded")
	}
	checkAdjacency(t, g, wantOut, wantIn)
	if g.NumEdges() != 8 {
		t.Fatalf("NumEdges after merge = %d, want 8", g.NumEdges())
	}
}

func TestStructuralUpdateThresholdTriggersMerge(t *testing.T) {
	dev := testDev(t)
	g, err := Build(dev, "g", paperEdges(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(3, uint32(i), 4); err != nil {
			t.Fatal(err)
		}
	}
	if g.Merges() == 0 {
		t.Fatal("threshold did not trigger a merge")
	}
	deg, err := g.OutDegreeSlow(3)
	if err != nil || deg != 3 {
		t.Fatalf("degree after merged adds = %d, err %v", deg, err)
	}
}

func TestAddRemoveCancel(t *testing.T) {
	dev := testDev(t)
	g, _ := Build(dev, "g", paperEdges(), BuildOptions{})
	g.AddEdge(0, 3, 1000)
	g.RemoveEdge(0, 3, 1000) // cancels the pending add
	deg, err := g.OutDegreeSlow(0)
	if err != nil || deg != 1 {
		t.Fatalf("degree = %d, want 1 (add cancelled)", deg)
	}
	g.RemoveEdge(0, 1, 1000)
	g.AddEdge(0, 1, 1000) // cancels the pending remove
	deg, err = g.OutDegreeSlow(0)
	if err != nil || deg != 1 {
		t.Fatalf("degree = %d, want 1 (remove cancelled)", deg)
	}
}

func TestStructuralUpdateOutOfRange(t *testing.T) {
	dev := testDev(t)
	g, _ := Build(dev, "g", paperEdges(), BuildOptions{})
	if err := g.AddEdge(0, 100, 0); err == nil {
		t.Fatal("out-of-range AddEdge should fail")
	}
	if err := g.RemoveEdge(100, 0, 0); err == nil {
		t.Fatal("out-of-range RemoveEdge should fail")
	}
}

// Property: a random sequence of adds/removes with random merges matches a
// reference adjacency set.
func TestQuickStructuralUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2})
		base := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
		g, err := Build(dev, "q", base, BuildOptions{NumVertices: 8, IntervalBudget: 48})
		if err != nil {
			return false
		}
		ref := map[graphio.Edge]bool{}
		for _, e := range base {
			ref[e] = true
		}
		for step := 0; step < 40; step++ {
			src := uint32(rng.Intn(8))
			dst := uint32(rng.Intn(8))
			e := graphio.Edge{Src: src, Dst: dst}
			if rng.Intn(2) == 0 {
				if !ref[e] {
					if err := g.AddEdge(src, dst, 1000); err != nil {
						return false
					}
					ref[e] = true
				}
			} else if ref[e] {
				if err := g.RemoveEdge(src, dst, 1000); err != nil {
					return false
				}
				delete(ref, e)
			}
			if rng.Intn(10) == 0 {
				if err := g.MergeInterval(rng.Intn(len(g.Intervals()))); err != nil {
					return false
				}
			}
		}
		got, err := g.CurrentEdges()
		if err != nil || len(got) != len(ref) {
			return false
		}
		for _, e := range got {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedBuildRoundTrip(t *testing.T) {
	wedges := []graphio.WeightedEdge{
		{Src: 0, Dst: 1, Weight: 10}, {Src: 0, Dst: 2, Weight: 20},
		{Src: 2, Dst: 0, Weight: 30}, {Src: 1, Dst: 2, Weight: 40},
	}
	dev := testDev(t)
	g, err := BuildWeighted(dev, "w", wedges, BuildOptions{IntervalBudget: 24})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasWeights() {
		t.Fatal("HasWeights false")
	}
	want := map[[2]uint32]uint32{}
	for _, e := range wedges {
		want[[2]uint32{e.Src, e.Dst}] = e.Weight
	}
	for iv := range g.Intervals() {
		interval := g.Intervals()[iv]
		var verts []uint32
		for v := interval.Lo; v < interval.Hi; v++ {
			verts = append(verts, v)
		}
		stats, err := g.LoadOutEdgesFull(iv, verts, func(v uint32, nbrs, weights []uint32, _, _ int32) {
			if len(weights) != len(nbrs) {
				t.Fatalf("weights len %d != nbrs %d", len(weights), len(nbrs))
			}
			for i, nb := range nbrs {
				if weights[i] != want[[2]uint32{v, nb}] {
					t.Fatalf("weight(%d,%d) = %d, want %d", v, nb, weights[i], want[[2]uint32{v, nb}])
				}
				delete(want, [2]uint32{v, nb})
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(verts) > 0 && stats.ValPages == 0 {
			t.Fatal("no val pages accounted")
		}
	}
	if len(want) != 0 {
		t.Fatalf("edges not served: %v", want)
	}
}

// Property: weighted CSR round-trips random weighted edge lists through
// build + full load, including in-side weights.
func TestQuickWeightedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(40) + 2)
		m := rng.Intn(200)
		var wedges []graphio.WeightedEdge
		for i := 0; i < m; i++ {
			wedges = append(wedges, graphio.WeightedEdge{
				Src: uint32(rng.Intn(int(n))), Dst: uint32(rng.Intn(int(n))),
				Weight: rng.Uint32() % 100,
			})
		}
		wedges = graphio.DedupWeighted(wedges)
		if len(wedges) == 0 {
			return true
		}
		dev := ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2})
		g, err := BuildWeighted(dev, "q", wedges, BuildOptions{
			NumVertices: n, IntervalBudget: int64(rng.Intn(500) + 24),
		})
		if err != nil {
			return false
		}
		wantOut := map[[2]uint32]uint32{}
		wantIn := map[[2]uint32]uint32{}
		for _, e := range wedges {
			wantOut[[2]uint32{e.Src, e.Dst}] = e.Weight
			wantIn[[2]uint32{e.Dst, e.Src}] = e.Weight
		}
		ok := true
		for iv := range g.Intervals() {
			interval := g.Intervals()[iv]
			var verts []uint32
			for v := interval.Lo; v < interval.Hi; v++ {
				verts = append(verts, v)
			}
			g.LoadOutEdgesFull(iv, verts, func(v uint32, nbrs, weights []uint32, _, _ int32) {
				for i, nb := range nbrs {
					if weights[i] != wantOut[[2]uint32{v, nb}] {
						ok = false
					}
				}
			})
			g.LoadInEdgesFull(iv, verts, func(v uint32, srcs, weights []uint32, _, _ int32) {
				for i, src := range srcs {
					if weights[i] != wantIn[[2]uint32{v, src}] {
						ok = false
					}
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReopenFromAdoptedDevice(t *testing.T) {
	dir := t.TempDir()
	// Build on a disk-backed device.
	{
		dev := ssd.MustOpen(ssd.Config{PageSize: 256, Channels: 2, Dir: dir})
		if _, err := Build(dev, "g", paperEdges(), BuildOptions{IntervalBudget: 3 * 12}); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh device over the same directory adopts the files; Open
	// restores logical sizes from the meta file.
	dev := ssd.MustOpen(ssd.Config{PageSize: 256, Channels: 2, Dir: dir})
	g, err := Open(dev, "g")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 || g.NumEdges() != 8 {
		t.Fatalf("reopened graph: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	edges, err := g.CurrentEdges()
	if err != nil {
		t.Fatal(err)
	}
	want := paperEdges()
	graphio.SortEdges(want)
	if len(edges) != len(want) {
		t.Fatalf("edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}
