package vc

import (
	"sort"

	"multilogvc/internal/graphio"
)

// RefEngine is a simple in-memory BSP engine. It is the semantic ground
// truth: every out-of-core engine must produce identical vertex values on
// identical programs and graphs (the suite's cross-engine tests assert
// this). It performs no IO accounting.
type RefEngine struct {
	n    uint32
	out  [][]uint32
	outW [][]uint32 // nil for unweighted graphs
	in   [][]uint32 // sorted in-neighbor lists, built lazily for AuxUsers
}

// NewRef builds a reference engine over a directed edge list.
func NewRef(edges []graphio.Edge, n uint32) *RefEngine {
	if m := graphio.NumVertices(edges); m > n {
		n = m
	}
	e := &RefEngine{n: n, out: make([][]uint32, n)}
	for _, ed := range edges {
		e.out[ed.Src] = append(e.out[ed.Src], ed.Dst)
	}
	for _, nbrs := range e.out {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
	return e
}

// NewRefWeighted builds a reference engine over weighted edges.
func NewRefWeighted(wedges []graphio.WeightedEdge, n uint32) *RefEngine {
	if m := graphio.NumVertices(graphio.Strip(wedges)); m > n {
		n = m
	}
	sorted := make([]graphio.WeightedEdge, len(wedges))
	copy(sorted, wedges)
	graphio.SortWeighted(sorted)
	e := &RefEngine{n: n, out: make([][]uint32, n), outW: make([][]uint32, n)}
	for _, ed := range sorted {
		e.out[ed.Src] = append(e.out[ed.Src], ed.Dst)
		e.outW[ed.Src] = append(e.outW[ed.Src], ed.Weight)
	}
	return e
}

func (e *RefEngine) buildIn() {
	if e.in != nil {
		return
	}
	e.in = make([][]uint32, e.n)
	for src, nbrs := range e.out {
		for _, dst := range nbrs {
			e.in[dst] = append(e.in[dst], uint32(src))
		}
	}
	for _, s := range e.in {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
}

// RefResult is the outcome of a reference run.
type RefResult struct {
	Values        []uint32
	Supersteps    int
	ActivePerStep []uint64 // processed vertices per superstep
	MsgsPerStep   []uint64 // messages sent per superstep
	Converged     bool     // halted before MaxSupersteps
}

type refCtx struct {
	eng       *RefEngine
	superstep int
	vertex    uint32
	values    []uint32
	halted    func(v uint32)
	send      func(dst, data uint32)
	aux       [][]uint32 // nil unless AuxUser
	muts      *[]Mutation
}

func (c *refCtx) Superstep() int      { return c.superstep }
func (c *refCtx) NumVertices() uint32 { return c.eng.n }
func (c *refCtx) Vertex() uint32      { return c.vertex }
func (c *refCtx) Value() uint32       { return c.values[c.vertex] }
func (c *refCtx) SetValue(v uint32)   { c.values[c.vertex] = v }
func (c *refCtx) OutEdges() []uint32  { return c.eng.out[c.vertex] }
func (c *refCtx) OutWeights() []uint32 {
	if c.eng.outW == nil {
		return nil
	}
	return c.eng.outW[c.vertex]
}
func (c *refCtx) VoteToHalt()           { c.halted(c.vertex) }
func (c *refCtx) Send(dst, data uint32) { c.send(dst, data) }
func (c *refCtx) InEdgeSources() []uint32 {
	if c.eng.in == nil {
		return nil
	}
	return c.eng.in[c.vertex]
}
func (c *refCtx) Aux() []uint32 {
	if c.aux == nil {
		return nil
	}
	return c.aux[c.vertex]
}

// AddEdge implements Mutator.
func (c *refCtx) AddEdge(src, dst, weight uint32) {
	*c.muts = append(*c.muts, Mutation{Add: true, Src: src, Dst: dst, Weight: weight})
}

// RemoveEdge implements Mutator.
func (c *refCtx) RemoveEdge(src, dst uint32) {
	*c.muts = append(*c.muts, Mutation{Src: src, Dst: dst})
}

// applyMutations rewrites the adjacency at a superstep boundary.
func (e *RefEngine) applyMutations(muts []Mutation) {
	for _, m := range muts {
		if m.Add {
			e.out[m.Src] = append(e.out[m.Src], m.Dst)
			if e.outW != nil {
				e.outW[m.Src] = append(e.outW[m.Src], m.Weight)
			}
			continue
		}
		nbrs := e.out[m.Src]
		for i, nb := range nbrs {
			if nb == m.Dst {
				e.out[m.Src] = append(nbrs[:i], nbrs[i+1:]...)
				if e.outW != nil {
					w := e.outW[m.Src]
					e.outW[m.Src] = append(w[:i], w[i+1:]...)
				}
				break
			}
		}
	}
	// Keep adjacency sorted (the documented OutEdges order). Weighted
	// lists stay aligned via pair sort.
	for v := range e.out {
		if e.outW == nil {
			sort.Slice(e.out[v], func(i, j int) bool { return e.out[v][i] < e.out[v][j] })
			continue
		}
		type pair struct{ d, w uint32 }
		pairs := make([]pair, len(e.out[v]))
		for i := range pairs {
			pairs[i] = pair{e.out[v][i], e.outW[v][i]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })
		for i, p := range pairs {
			e.out[v][i], e.outW[v][i] = p.d, p.w
		}
	}
	e.in = nil // invalidate lazily-built in-adjacency
}

// Run executes prog for at most maxSupersteps supersteps (or until no
// vertex is active and no messages are in flight).
func (e *RefEngine) Run(prog Program, maxSupersteps int) *RefResult {
	values := make([]uint32, e.n)
	for v := uint32(0); v < e.n; v++ {
		values[v] = prog.InitValue(v, e.n)
	}

	var aux [][]uint32
	if au, ok := prog.(AuxUser); ok {
		e.buildIn()
		init := au.AuxInit(e.n)
		aux = make([][]uint32, e.n)
		for v := uint32(0); v < e.n; v++ {
			s := make([]uint32, len(e.in[v]))
			for i := range s {
				s[i] = init
			}
			aux[v] = s
		}
	}

	active := make(map[uint32]bool)
	is := prog.InitActive(e.n)
	if is.All {
		for v := uint32(0); v < e.n; v++ {
			active[v] = true
		}
	} else {
		for _, v := range is.Verts {
			active[v] = true
		}
	}

	inbox := make(map[uint32][]Msg)
	res := &RefResult{}
	for step := 0; step < maxSupersteps; step++ {
		if len(active) == 0 && len(inbox) == 0 {
			res.Converged = true
			break
		}
		// Vertices with messages become active.
		for v := range inbox {
			active[v] = true
		}
		// Deterministic processing order.
		verts := make([]uint32, 0, len(active))
		for v := range active {
			verts = append(verts, v)
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })

		nextInbox := make(map[uint32][]Msg)
		halted := make(map[uint32]bool)
		var sent uint64
		var muts []Mutation
		ctx := &refCtx{
			eng: e, superstep: step, values: values, aux: aux,
			halted: func(v uint32) { halted[v] = true },
			muts:   &muts,
		}
		for _, v := range verts {
			ctx.vertex = v
			ctx.send = func(dst, data uint32) {
				nextInbox[dst] = append(nextInbox[dst], Msg{Src: v, Data: data})
				sent++
			}
			prog.Process(ctx, inbox[v])
		}
		res.ActivePerStep = append(res.ActivePerStep, uint64(len(verts)))
		res.MsgsPerStep = append(res.MsgsPerStep, sent)
		res.Supersteps++

		for v := range halted {
			delete(active, v)
		}
		if len(muts) > 0 {
			e.applyMutations(muts)
		}
		inbox = nextInbox
	}
	if len(active) == 0 && len(inbox) == 0 {
		res.Converged = true
	}
	res.Values = values
	return res
}
