package vc

import (
	"testing"
	"testing/quick"

	"multilogvc/internal/graphio"
)

func TestFindSource(t *testing.T) {
	sources := []uint32{2, 5, 9, 100}
	cases := []struct {
		src  uint32
		want int
	}{{2, 0}, {5, 1}, {100, 3}, {3, -1}, {0, -1}, {101, -1}}
	for _, c := range cases {
		if got := FindSource(sources, c.src); got != c.want {
			t.Errorf("FindSource(%d) = %d, want %d", c.src, got, c.want)
		}
	}
	if got := FindSource(nil, 1); got != -1 {
		t.Errorf("FindSource(nil) = %d", got)
	}
}

func TestHash64Deterministic(t *testing.T) {
	a := Hash64(1, 2, 3)
	b := Hash64(1, 2, 3)
	if a != b {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2, 3) == Hash64(1, 2, 4) {
		t.Fatal("Hash64 collision on trivially different keys")
	}
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 should be order sensitive")
	}
}

func TestHash64Distribution(t *testing.T) {
	// Crude uniformity check: buckets of low bits should be balanced.
	const buckets = 16
	counts := make([]int, buckets)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		counts[Hash64(42, uint64(i))%buckets]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d has %d of %d (expected ~%d)", b, c, n, want)
		}
	}
}

func TestF32RoundTrip(t *testing.T) {
	f := func(x float32) bool { return ToF32(F32(x)) == x || x != x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// chainProg propagates a counter down a chain graph, for exercising the
// reference engine's BSP semantics.
type chainProg struct{}

func (chainProg) Name() string                 { return "chain" }
func (chainProg) InitValue(v, n uint32) uint32 { return 0 }
func (chainProg) InitActive(n uint32) InitSet  { return InitSet{Verts: []uint32{0}} }
func (chainProg) Process(ctx Context, msgs []Msg) {
	if ctx.Superstep() == 0 {
		ctx.SetValue(1)
		for _, dst := range ctx.OutEdges() {
			ctx.Send(dst, 1)
		}
	} else {
		var best uint32
		for _, m := range msgs {
			if m.Data > best {
				best = m.Data
			}
		}
		if best+0 > 0 && ctx.Value() == 0 {
			ctx.SetValue(best + 1)
			for _, dst := range ctx.OutEdges() {
				ctx.Send(dst, best+1)
			}
		}
	}
	ctx.VoteToHalt()
}

func TestRefEngineChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3
	edges := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	eng := NewRef(edges, 4)
	res := eng.Run(chainProg{}, 100)
	want := []uint32{1, 2, 3, 4}
	for v, w := range want {
		if res.Values[v] != w {
			t.Fatalf("values = %v, want %v", res.Values, want)
		}
	}
	if !res.Converged {
		t.Fatal("chain should converge")
	}
	if res.Supersteps != 5 { // 4 propagation steps + 1 empty-check... steps 0..3 send, step 4 digest
		t.Logf("supersteps = %d", res.Supersteps)
	}
	// Activity: one vertex active per superstep while propagating.
	if res.ActivePerStep[0] != 1 {
		t.Fatalf("ActivePerStep = %v", res.ActivePerStep)
	}
}

func TestRefEngineMaxSupersteps(t *testing.T) {
	edges := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	eng := NewRef(edges, 2)
	// pingpong forever
	res := eng.Run(pingpong{}, 7)
	if res.Supersteps != 7 {
		t.Fatalf("supersteps = %d, want 7", res.Supersteps)
	}
	if res.Converged {
		t.Fatal("should not converge")
	}
}

type pingpong struct{}

func (pingpong) Name() string                 { return "pingpong" }
func (pingpong) InitValue(v, n uint32) uint32 { return 0 }
func (pingpong) InitActive(n uint32) InitSet  { return InitSet{All: true} }
func (pingpong) Process(ctx Context, msgs []Msg) {
	for _, dst := range ctx.OutEdges() {
		ctx.Send(dst, 1)
	}
	ctx.VoteToHalt()
}

// haltProg verifies vote-to-halt semantics: vertices that never receive
// messages and vote to halt stop being processed.
type haltProg struct{ processed map[uint32]int }

func (h haltProg) Name() string                 { return "halt" }
func (h haltProg) InitValue(v, n uint32) uint32 { return 0 }
func (h haltProg) InitActive(n uint32) InitSet  { return InitSet{All: true} }
func (h haltProg) Process(ctx Context, msgs []Msg) {
	h.processed[ctx.Vertex()]++
	ctx.VoteToHalt()
}

func TestRefEngineHalt(t *testing.T) {
	eng := NewRef([]graphio.Edge{{Src: 0, Dst: 1}}, 2)
	h := haltProg{processed: map[uint32]int{}}
	res := eng.Run(h, 10)
	if h.processed[0] != 1 || h.processed[1] != 1 {
		t.Fatalf("processed = %v, want once each", h.processed)
	}
	if !res.Converged || res.Supersteps != 1 {
		t.Fatalf("supersteps = %d converged = %v", res.Supersteps, res.Converged)
	}
}

// stayProg never votes to halt; it must be processed every superstep.
type stayProg struct{ processed *int }

func (s stayProg) Name() string                 { return "stay" }
func (s stayProg) InitValue(v, n uint32) uint32 { return 0 }
func (s stayProg) InitActive(n uint32) InitSet  { return InitSet{Verts: []uint32{0}} }
func (s stayProg) Process(ctx Context, msgs []Msg) {
	*s.processed++
}

func TestRefEngineStayActive(t *testing.T) {
	eng := NewRef([]graphio.Edge{{Src: 0, Dst: 1}}, 2)
	n := 0
	eng.Run(stayProg{processed: &n}, 5)
	if n != 5 {
		t.Fatalf("processed %d times, want 5", n)
	}
}

func TestRefWeighted(t *testing.T) {
	wedges := []graphio.WeightedEdge{
		{Src: 0, Dst: 1, Weight: 9}, {Src: 1, Dst: 2, Weight: 3},
	}
	eng := NewRefWeighted(wedges, 3)
	var gotW []uint32
	probe := probeProg{onProcess: func(ctx Context) {
		if ctx.Vertex() == 0 {
			gotW = append(gotW, ctx.OutWeights()...)
		}
		ctx.VoteToHalt()
	}}
	eng.Run(probe, 2)
	if len(gotW) != 1 || gotW[0] != 9 {
		t.Fatalf("OutWeights = %v", gotW)
	}
}

type probeProg struct{ onProcess func(ctx Context) }

func (probeProg) Name() string                   { return "probe" }
func (probeProg) InitValue(v, n uint32) uint32   { return 0 }
func (probeProg) InitActive(n uint32) InitSet    { return InitSet{All: true} }
func (p probeProg) Process(ctx Context, _ []Msg) { p.onProcess(ctx) }

// mutatorProbe adds an edge 0->2 in superstep 0 and records whether it is
// visible in superstep 1 (it must be) but not in superstep 0.
type mutatorProbe struct{ sawEarly, sawLate *bool }

func (mutatorProbe) Name() string                 { return "mutprobe" }
func (mutatorProbe) InitValue(v, n uint32) uint32 { return 0 }
func (mutatorProbe) InitActive(n uint32) InitSet  { return InitSet{Verts: []uint32{0}} }
func (m mutatorProbe) Process(ctx Context, _ []Msg) {
	switch ctx.Superstep() {
	case 0:
		if mu, ok := ctx.(Mutator); ok {
			mu.AddEdge(0, 2, 1)
		}
		for _, d := range ctx.OutEdges() {
			if d == 2 {
				*m.sawEarly = true
			}
		}
	case 1:
		for _, d := range ctx.OutEdges() {
			if d == 2 {
				*m.sawLate = true
			}
		}
		ctx.VoteToHalt()
	default:
		ctx.VoteToHalt()
	}
}

func TestRefMutatorBoundarySemantics(t *testing.T) {
	eng := NewRef([]graphio.Edge{{Src: 0, Dst: 1}}, 3)
	early, late := false, false
	eng.Run(mutatorProbe{sawEarly: &early, sawLate: &late}, 5)
	if early {
		t.Fatal("mutation visible within the same superstep")
	}
	if !late {
		t.Fatal("mutation not visible in the next superstep")
	}
}

func TestRefMutatorRemove(t *testing.T) {
	eng := NewRef([]graphio.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, 3)
	removed := false
	probe := probeProg{onProcess: func(ctx Context) {
		if ctx.Vertex() != 0 {
			ctx.VoteToHalt()
			return
		}
		switch ctx.Superstep() {
		case 0:
			ctx.(Mutator).RemoveEdge(0, 1)
		case 1:
			removed = true
			for _, d := range ctx.OutEdges() {
				if d == 1 {
					removed = false
				}
			}
			ctx.VoteToHalt()
		}
	}}
	eng.Run(probe, 5)
	if !removed {
		t.Fatal("RemoveEdge did not take effect at the superstep boundary")
	}
}
