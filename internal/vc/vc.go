// Package vc defines the vertex-centric programming contract shared by all
// engines in this repository (MultiLogVC, the GraphChi baseline, the
// GraFBoost baseline, and the in-memory reference engine).
//
// A Program is written once and runs unchanged on every engine, which is
// what makes the paper's cross-engine comparisons meaningful. The model is
// bulk-synchronous (Pregel-style): in each superstep every active vertex
// processes the messages sent to it in the previous superstep, may update
// its value, send messages along its out-edges, and vote to halt. A halted
// vertex is reactivated by an incoming message.
//
// Messages are fixed-size <src, data> pairs (uint32 each); on storage they
// are logged as 12-byte <dst, src, data> records, matching §V-A of the
// paper. Programs whose updates are associative and commutative may
// additionally implement Combiner to unlock the engines' merge fast paths
// (GraFBoost requires it).
package vc

import (
	"math"
	"sort"
)

// Msg is one update delivered to a vertex.
type Msg struct {
	Src  uint32 // sending vertex
	Data uint32 // payload (bit-cast float32 for numeric algorithms)
}

// Context is the engine-provided view a vertex has while being processed.
// It is only valid during the Process call that received it.
type Context interface {
	// Superstep returns the current superstep number (0-based).
	Superstep() int
	// NumVertices returns the graph's vertex count.
	NumVertices() uint32
	// Vertex returns the id of the vertex being processed.
	Vertex() uint32
	// Value returns the current vertex value.
	Value() uint32
	// SetValue updates the vertex value.
	SetValue(v uint32)
	// OutEdges returns the destination ids of the vertex's out-edges.
	// The slice aliases engine memory and is valid only during Process.
	OutEdges() []uint32
	// OutWeights returns the vertex's out-edge weights, parallel to
	// OutEdges, or nil when the graph is unweighted. Same lifetime rules
	// as OutEdges.
	OutWeights() []uint32
	// Send sends data to dst, delivered in the next superstep.
	Send(dst uint32, data uint32)
	// VoteToHalt deactivates the vertex; an incoming message reactivates
	// it. All of the paper's applications deactivate after processing.
	VoteToHalt()
	// InEdgeSources returns the vertex's in-edge source ids, sorted
	// ascending. Only available when the Program implements AuxUser;
	// returns nil otherwise.
	InEdgeSources() []uint32
	// Aux returns mutable per-in-edge auxiliary state parallel to
	// InEdgeSources (e.g. the last known label of each in-neighbor).
	// Only available when the Program implements AuxUser.
	Aux() []uint32
}

// InitSet describes the initially active vertex set of a program.
type InitSet struct {
	All   bool     // every vertex starts active
	Verts []uint32 // otherwise, exactly these (sorted ascending)
}

// Program is a vertex-centric graph algorithm.
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// InitValue returns vertex v's value before superstep 0.
	InitValue(v uint32, n uint32) uint32
	// InitActive returns the initially active vertices. They run Process
	// in superstep 0 with an empty message list.
	InitActive(n uint32) InitSet
	// Process handles one active vertex. msgs are the updates sent to
	// this vertex in the previous superstep, in unspecified order.
	Process(ctx Context, msgs []Msg)
}

// LaneProgram is implemented by multi-source programs that run K
// independent point queries ("lanes") in one superstep execution. The
// engine then allocates a lane-strided value array (Lanes slots per
// vertex) and provides a LaneContext; the active set is the union of the
// per-lane frontiers, so K queries cost one pass over the logs instead of
// K. Lanes are fully independent — a lane's values and messages never
// influence another lane — which is what makes the batched result
// bit-identical to K sequential single-source runs. LanePrograms must not
// implement Combiner: messages of different lanes must never merge.
type LaneProgram interface {
	Program
	// Lanes returns the number of member queries (value slots per vertex).
	Lanes() int
	// InitValueLane returns vertex v's initial value in the given lane.
	// Program.InitValue is still consulted by single-lane engines and
	// should return InitValueLane(v, 0, n).
	InitValueLane(v uint32, lane int, n uint32) uint32
}

// LaneContext is the Context extension engines provide when running a
// LaneProgram. Programs probe for it with a type assertion; engines
// without lane support simply never run LanePrograms with Lanes() > 1.
type LaneContext interface {
	Context
	// ValueLane returns the processed vertex's value in the given lane.
	ValueLane(lane int) uint32
	// SetValueLane updates the processed vertex's value in the given lane.
	SetValueLane(lane int, v uint32)
}

// Combiner is implemented by programs whose updates can be merged into a
// single value per destination without affecting correctness (BFS's min,
// PageRank's sum). Engines may apply Combine to any subset of a vertex's
// incoming messages; the paper's GraFBoost baseline only supports programs
// that implement it.
type Combiner interface {
	Combine(a, b uint32) uint32
}

// AuxUser is implemented by programs that keep per-in-edge state (CDLP
// keeps each in-neighbor's last known label). Engines then provide
// Context.InEdgeSources and Context.Aux, persisted across supersteps.
type AuxUser interface {
	// AuxInit is the initial value of every aux entry. It receives the
	// graph size so programs can encode "unknown" sentinels.
	AuxInit(n uint32) uint32
}

// Mutation is one buffered structural update emitted during vertex
// processing.
type Mutation struct {
	Add              bool // true = add edge, false = remove
	Src, Dst, Weight uint32
}

// Mutator is implemented by the Contexts of engines that support graph
// structural updates from inside Process (§V-E of the paper). Mutations
// are buffered and applied at the end of the superstep — they become
// visible at the start of the next superstep, the restriction the paper
// (and most vertex-centric frameworks) places on structure changes.
// Programs probe for support with a type assertion:
//
//	if m, ok := ctx.(vc.Mutator); ok { m.AddEdge(u, v, 1) }
//
// The MultiLogVC engine and the reference engine implement it; mutation
// is not supported together with AuxUser programs.
type Mutator interface {
	AddEdge(src, dst, weight uint32)
	RemoveEdge(src, dst uint32)
}

// FindSource returns the index of src in the sorted sources slice, or -1.
// Programs use it to address Aux entries by sending vertex.
func FindSource(sources []uint32, src uint32) int {
	i := sort.Search(len(sources), func(i int) bool { return sources[i] >= src })
	if i < len(sources) && sources[i] == src {
		return i
	}
	return -1
}

// Hash64 is a splittable deterministic hash used for all randomized
// decisions (MIS priorities, random-walk steps), keyed by an arbitrary
// number of values. It is a 64-bit mix of the SplitMix64 finalizer.
func Hash64(keys ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, k := range keys {
		h ^= k + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = mix64(h)
	}
	return h
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// F32 converts a float32 payload to message bits.
func F32(f float32) uint32 { return math.Float32bits(f) }

// ToF32 converts message bits back to a float32 payload.
func ToF32(u uint32) float32 { return math.Float32frombits(u) }
