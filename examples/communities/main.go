// Communities: detect planted communities with label propagation (CDLP),
// one of the algorithms that needs every message individually — the class
// MultiLogVC supports but combine-based single-log engines cannot run.
package main

import (
	"fmt"
	"log"
	"sort"

	multilogvc "multilogvc"
)

func main() {
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 4096})
	if err != nil {
		log.Fatal(err)
	}

	// 8 communities of 200 vertices; dense inside (avg degree 12),
	// sparse across (avg degree 1).
	const groups, size = 8, 200
	edges, err := multilogvc.PlantedPartition(groups, size, 12, 1, 99)
	if err != nil {
		log.Fatal(err)
	}
	g, err := sys.BuildGraph("clusters", edges, multilogvc.GraphOptions{
		MemoryBudget: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := g.Run(multilogvc.NewCommunityDetection(), multilogvc.RunOptions{
		MaxSupersteps: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report)

	// A vertex's final value is its community label. Count label sizes.
	sizes := map[uint32]int{}
	for _, label := range res.Values {
		sizes[label]++
	}
	type comm struct {
		label uint32
		n     int
	}
	var found []comm
	for l, n := range sizes {
		found = append(found, comm{l, n})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n > found[j].n })
	fmt.Printf("\nplanted %d communities of %d; detected %d labels, largest:\n",
		groups, size, len(found))
	for i, c := range found {
		if i >= groups {
			break
		}
		fmt.Printf("  label %-6d %d vertices\n", c.label, c.n)
	}

	// How pure are the planted groups? For each planted group, the share
	// of members agreeing on the group's majority label.
	agree := 0
	for gi := 0; gi < groups; gi++ {
		counts := map[uint32]int{}
		for v := gi * size; v < (gi+1)*size; v++ {
			counts[res.Values[v]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		agree += best
	}
	fmt.Printf("\ncommunity purity: %.1f%% of vertices carry their group's majority label\n",
		100*float64(agree)/float64(groups*size))
}
