// Quickstart: build a small power-law graph on the simulated SSD, run
// PageRank on the MultiLogVC engine, and print the top-ranked vertices
// and the run report.
package main

import (
	"fmt"
	"log"
	"sort"

	multilogvc "multilogvc"
)

func main() {
	// A system is a simulated flash device (16KB pages, 8 channels by
	// default). Pass Dir to back it with real files instead of RAM.
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 2^12 vertices, ~12 edges per vertex, power-law degree
	// distribution — a miniature social graph.
	edges, err := multilogvc.RMAT(12, 12, 42)
	if err != nil {
		log.Fatal(err)
	}
	g, err := sys.BuildGraph("social", edges, multilogvc.GraphOptions{
		MemoryBudget: 1 << 20, // 1 MiB budget → several vertex intervals
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d vertex intervals\n",
		g.NumVertices(), g.NumEdges(), g.Intervals())

	res, err := g.Run(multilogvc.NewPageRank(), multilogvc.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report)

	type ranked struct {
		v    uint32
		rank float64
	}
	top := make([]ranked, 0, len(res.Values))
	for v, bits := range res.Values {
		top = append(top, ranked{uint32(v), multilogvc.PageRankValue(bits)})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top 10 vertices by rank:")
	for _, r := range top[:10] {
		fmt.Printf("  v%-6d %.3f\n", r.v, r.rank)
	}
}
