// Shortestpaths: weighted single-source shortest paths on a road-network-
// like graph, exercising the CSR val vector (edge weights, Fig 1a of the
// paper) and the asynchronous computation model (§V-F), which converges in
// fewer supersteps by delivering forward updates within a superstep.
package main

import (
	"fmt"
	"log"

	multilogvc "multilogvc"
)

func main() {
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 4096})
	if err != nil {
		log.Fatal(err)
	}

	// A road-network analog: a 96×96 grid with a few long highways, travel
	// times 1..60 per segment.
	edges, err := multilogvc.Grid(96, 96)
	if err != nil {
		log.Fatal(err)
	}
	wedges := multilogvc.RandomWeights(edges, 60, 2026)
	g, err := sys.BuildWeightedGraph("roads", wedges, multilogvc.GraphOptions{
		MemoryBudget: 32 << 10, // small budget => many vertex intervals
	})
	if err != nil {
		log.Fatal(err)
	}
	// Highways: cheap links along the diagonal.
	n := g.NumVertices()
	for step := uint32(0); step+97*8 < n; step += 97 * 8 {
		if err := g.AddWeightedEdge(step, step+97*8, 5); err != nil {
			log.Fatal(err)
		}
		if err := g.AddWeightedEdge(step+97*8, step, 5); err != nil {
			log.Fatal(err)
		}
	}

	const source = 0
	sync, err := g.Run(multilogvc.NewSSSP(source), multilogvc.RunOptions{MaxSupersteps: 512})
	if err != nil {
		log.Fatal(err)
	}
	async, err := g.Run(multilogvc.NewSSSP(source), multilogvc.RunOptions{
		MaxSupersteps: 512, Async: true, DisableFusing: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for v := range sync.Values {
		if sync.Values[v] != async.Values[v] {
			log.Fatalf("sync and async disagree at vertex %d", v)
		}
	}
	far := n - 1
	fmt.Printf("travel time %d -> %d: %d\n", source, far, sync.Values[far])
	fmt.Printf("synchronous model:  %3d supersteps, %8d pages read\n",
		len(sync.Report.Supersteps), sync.Report.PagesRead)
	fmt.Printf("asynchronous model: %3d supersteps, %8d pages read\n",
		len(async.Report.Supersteps), async.Report.PagesRead)
	fmt.Println("\nasync delivers forward (ascending-interval) updates within the same")
	fmt.Println("superstep (§V-F), so the distance wavefront needs fewer supersteps;")
	fmt.Println("both models converge to identical distances.")
}
