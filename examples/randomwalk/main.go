// Randomwalk: DrunkardMob-style walk simulation for recommendation-like
// workloads. Walkers start from sampled vertices and hop randomly; visit
// counts approximate vertex influence. Walker messages cannot be merged,
// so this is another program only fully general engines run.
package main

import (
	"fmt"
	"log"
	"sort"

	multilogvc "multilogvc"
)

func main() {
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 4096})
	if err != nil {
		log.Fatal(err)
	}
	edges, err := multilogvc.RMAT(13, 10, 3)
	if err != nil {
		log.Fatal(err)
	}
	g, err := sys.BuildGraph("recs", edges, multilogvc.GraphOptions{
		MemoryBudget: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One walker per 64 vertices, 10 hops each (the paper samples every
	// 1000th vertex on billion-vertex graphs; density kept comparable).
	prog := multilogvc.NewRandomWalk(64, 10, 7)
	res, err := g.Run(prog, multilogvc.RunOptions{MaxSupersteps: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report)

	var total uint64
	type visited struct {
		v     uint32
		count uint32
	}
	var top []visited
	for v, c := range res.Values {
		total += uint64(c)
		if c > 0 {
			top = append(top, visited{uint32(v), c})
		}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].count > top[j].count })
	fmt.Printf("\n%d total visits across %d touched vertices\n", total, len(top))
	fmt.Println("most-visited vertices (walk-based influence):")
	for i, t := range top {
		if i >= 10 {
			break
		}
		fmt.Printf("  v%-6d %d visits\n", t.v, t.count)
	}
}
