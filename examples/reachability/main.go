// Reachability: the paper's headline experiment (Fig 5) as a demo. BFS
// traverses a fraction of a large graph; MultiLogVC reads only the pages
// holding active vertices while the GraphChi baseline reloads whole
// shards, so the speedup is largest when the traversal is shallow.
package main

import (
	"fmt"
	"log"

	multilogvc "multilogvc"
)

func main() {
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 4096})
	if err != nil {
		log.Fatal(err)
	}
	edges, err := multilogvc.RMAT(13, 12, 7)
	if err != nil {
		log.Fatal(err)
	}
	g, err := sys.BuildGraph("web", edges, multilogvc.GraphOptions{
		MemoryBudget: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := uint64(g.NumVertices())
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("%-10s %-12s %-12s %s\n", "traversal", "mlvc pages", "chi pages", "speedup")

	for _, frac := range []float64{0.1, 0.5, 0.9} {
		target := uint64(frac * float64(n))
		stop := func(step int, cum uint64) bool { return cum >= target }

		ml, err := g.Run(multilogvc.NewBFS(0), multilogvc.RunOptions{
			MaxSupersteps: 64, StopAfter: stop,
		})
		if err != nil {
			log.Fatal(err)
		}
		chi, err := g.Run(multilogvc.NewBFS(0), multilogvc.RunOptions{
			Engine: multilogvc.EngineGraphChi, MaxSupersteps: 64, StopAfter: stop,
		})
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(chi.Report.TotalTime()) / float64(ml.Report.TotalTime())
		fmt.Printf("%-10.1f %-12d %-12d %.2fx\n", frac,
			ml.Report.PagesRead, chi.Report.PagesRead, speedup)
	}
	fmt.Println("\nMultiLogVC's advantage shrinks as the traversal widens — Fig 5a's shape.")
}
