// Package multilogvc is an out-of-core vertex-centric graph processing
// framework for flash storage, reproducing "MultiLogVC: Efficient
// Out-of-Core Graph Processing Framework for Flash Storage" (IPDPS 2021).
//
// Graphs larger than memory are stored on a (simulated) SSD in
// interval-partitioned CSR form; per-superstep updates flow through one
// log per destination vertex interval, so each interval's messages sort
// in memory without an external sort while every message is preserved —
// the full generality of vertex-centric programming. An edge-log
// optimizer re-logs the adjacency of predicted-active vertices that live
// on poorly utilized pages, cutting read amplification further.
//
// The package also ships the paper's two baselines — a GraphChi-style
// shard engine and a GraFBoost-style single-log engine — behind the same
// Program interface, plus the six evaluated applications and synthetic
// graph generators, so the paper's entire evaluation is reproducible (see
// EXPERIMENTS.md).
//
// # Quick start
//
//	sys, _ := multilogvc.NewSystem(multilogvc.SystemOptions{})
//	edges, _ := multilogvc.RMAT(14, 12, 42)
//	g, _ := sys.BuildGraph("social", edges, multilogvc.GraphOptions{})
//	res, _ := g.Run(multilogvc.NewPageRank(), multilogvc.RunOptions{})
//	fmt.Println(res.Report)
package multilogvc

import (
	"context"
	"fmt"
	"os"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/ckpt"
	"multilogvc/internal/core"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/grafboost"
	"multilogvc/internal/graphchi"
	"multilogvc/internal/graphio"
	"multilogvc/internal/metrics"
	"multilogvc/internal/obsv"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// Core vertex-centric types, re-exported for writing custom programs.
type (
	// Program is a vertex-centric graph algorithm; see the vc package
	// contract for the superstep semantics.
	Program = vc.Program
	// Context is the per-vertex view during Process.
	Context = vc.Context
	// Msg is one delivered update.
	Msg = vc.Msg
	// InitSet selects initially active vertices.
	InitSet = vc.InitSet
	// Combiner marks programs whose updates merge associatively.
	Combiner = vc.Combiner
	// AuxUser marks programs with per-in-edge persistent state.
	AuxUser = vc.AuxUser
	// Edge is one directed edge.
	Edge = graphio.Edge
	// WeightedEdge is one directed edge with a uint32 weight.
	WeightedEdge = graphio.WeightedEdge
	// Report is an engine run report.
	Report = metrics.Report
	// SuperstepStats is one superstep's measurements.
	SuperstepStats = metrics.SuperstepStats
	// Trace collects structured spans from an engine run; export it with
	// WriteChromeTrace for Perfetto / chrome://tracing.
	Trace = obsv.Trace
)

// NewTrace creates an empty span trace to pass in RunOptions.Trace.
func NewTrace() *Trace { return obsv.NewTrace() }

// Sentinel errors re-exported for fault classification: callers match
// them with errors.Is to tell a permanently failed device from an
// exhausted transient-retry budget or an unusable checkpoint.
var (
	// ErrDeviceFault is a permanent injected device fault (ssd.ErrInjected).
	ErrDeviceFault = ssd.ErrInjected
	// ErrTransientFault is a transient device fault; the retry layer
	// absorbs these unless the budget runs out.
	ErrTransientFault = ssd.ErrTransient
	// ErrRetriesExhausted marks a transient fault that outlived the retry
	// budget (the error chain also matches ErrTransientFault).
	ErrRetriesExhausted = ssd.ErrRetriesExhausted
	// ErrCorruptCheckpoint is returned by a Resume run whose checkpoint
	// slots are all torn or CRC-invalid.
	ErrCorruptCheckpoint = ckpt.ErrCorrupt
	// ErrCorruptPage marks a page whose content failed its CRC32C on a
	// read path — silent data corruption, distinct from transient faults
	// because retrying cannot help.
	ErrCorruptPage = ssd.ErrCorruptPage
	// ErrCorruptData is returned when corrupt vital data could not be
	// recovered: checkpointing was off, or rollback attempts ran out.
	ErrCorruptData = core.ErrCorruptData
	// ErrInterrupted is returned when RunOptions.Interrupt fired; a
	// checkpoint was committed first, so rerunning with Resume continues
	// the computation.
	ErrInterrupted = core.ErrInterrupted
	// ErrNoSpace is returned when a write exceeded the device's disk
	// quota (SystemOptions.DiskCapacity) and space reclamation could not
	// free enough to retry — the run ends classified, never silently
	// truncated.
	ErrNoSpace = ssd.ErrNoSpace
	// ErrDeadline is returned when RunOptions.Context expired on a
	// deadline; on the MultiLogVC engine a boundary checkpoint was
	// committed first, so rerunning with Resume continues the computation.
	ErrDeadline = core.ErrDeadline
)

// ServeDebug starts an HTTP listener exposing live engine gauges at
// /debug/vars (expvar) and profiles at /debug/pprof/. It returns the
// bound address and a shutdown func.
func ServeDebug(addr string) (string, func() error, error) { return obsv.Serve(addr) }

// SystemOptions configures the storage device under a System.
type SystemOptions struct {
	// PageSize in bytes; defaults to 16KB, the paper's SSD page size.
	PageSize int
	// Channels is the simulated flash channel count; defaults to 8.
	Channels int
	// PageReadLatency / PageWriteLatency drive the virtual storage
	// clock; defaults 50µs / 70µs per page.
	PageReadLatency  time.Duration
	PageWriteLatency time.Duration
	// Dir backs the device with real files when non-empty; otherwise
	// pages live in RAM (still fully accounted).
	Dir string
	// CacheMB attaches a buffer-pool page cache of the given size (in
	// MiB) between the engines and the device: CLOCK eviction, pinning
	// for in-flight batches, write-through coherence, and — on the
	// MultiLogVC engine — asynchronous next-interval prefetch. 0 (the
	// default) runs uncached; page reads always hit the device, which is
	// what the paper's accounting model measures.
	CacheMB int
	// MaxRetries bounds how many times a page operation hit by a
	// transient device fault is retried with exponential backoff (charged
	// to the virtual storage clock). 0 keeps the default of 3; negative
	// disables retries.
	MaxRetries int
	// DiskCapacity caps the device's total byte footprint. Writes that
	// would exceed it trigger the device's space reclaimers (consumed
	// message-log intervals, stale checkpoint slots) and are retried once;
	// if still over quota they fail with ErrNoSpace. 0 (the default)
	// leaves the device unbounded.
	DiskCapacity int64
}

// System owns a storage device and the graphs on it.
type System struct {
	dev   *ssd.Device
	cache *pagecache.Cache // nil when CacheMB == 0
}

// NewSystem opens a storage device.
func NewSystem(opts SystemOptions) (*System, error) {
	dev, err := ssd.Open(ssd.Config{
		PageSize:         opts.PageSize,
		Channels:         opts.Channels,
		PageReadLatency:  opts.PageReadLatency,
		PageWriteLatency: opts.PageWriteLatency,
		Dir:              opts.Dir,
		Capacity:         opts.DiskCapacity,
		Retry:            ssd.RetryPolicy{MaxRetries: opts.MaxRetries},
	})
	if err != nil {
		return nil, err
	}
	s := &System{dev: dev}
	if c := pagecache.FromMB(opts.CacheMB, dev.PageSize()); c != nil {
		dev.AttachCache(c)
		s.cache = c
	}
	return s, nil
}

// Device exposes the underlying simulated device (stats, page size).
func (s *System) Device() *ssd.Device { return s.dev }

// Cache exposes the attached page cache, or nil when the System is
// uncached (SystemOptions.CacheMB == 0).
func (s *System) Cache() *pagecache.Cache { return s.cache }

// GraphOptions configures BuildGraph.
type GraphOptions struct {
	// NumVertices overrides the inferred count (max id + 1).
	NumVertices uint32
	// MemoryBudget bounds per-run memory (sort + log buffers); vertex
	// intervals are sized from it per §V-A1. Defaults to 64 MiB.
	MemoryBudget int64
}

// Graph is a graph stored on a System's device, runnable on any engine.
type Graph struct {
	sys       *System
	g         *csr.Graph
	edges     []Edge         // retained for the shard baseline
	wedges    []WeightedEdge // weighted graphs only
	memBudget int64
}

// BuildGraph writes edges to the device as an interval-partitioned CSR
// graph. For undirected graphs pass the symmetric closure (see
// MakeUndirected).
func (s *System) BuildGraph(name string, edges []Edge, opts GraphOptions) (*Graph, error) {
	if opts.MemoryBudget <= 0 {
		opts.MemoryBudget = 64 << 20
	}
	g, err := csr.Build(s.dev, name, edges, csr.BuildOptions{
		NumVertices:    opts.NumVertices,
		IntervalBudget: opts.MemoryBudget * 75 / 100,
	})
	if err != nil {
		return nil, err
	}
	kept := make([]Edge, len(edges))
	copy(kept, edges)
	return &Graph{sys: s, g: g, edges: kept, memBudget: opts.MemoryBudget}, nil
}

// BuildWeightedGraph is BuildGraph for weighted edges: per-edge weights
// are stored in the CSR val vector (Fig 1a of the paper) and reach
// programs through Context.OutWeights.
func (s *System) BuildWeightedGraph(name string, wedges []WeightedEdge, opts GraphOptions) (*Graph, error) {
	if opts.MemoryBudget <= 0 {
		opts.MemoryBudget = 64 << 20
	}
	g, err := csr.BuildWeighted(s.dev, name, wedges, csr.BuildOptions{
		NumVertices:    opts.NumVertices,
		IntervalBudget: opts.MemoryBudget * 75 / 100,
	})
	if err != nil {
		return nil, err
	}
	kept := make([]WeightedEdge, len(wedges))
	copy(kept, wedges)
	return &Graph{sys: s, g: g, wedges: kept, memBudget: opts.MemoryBudget}, nil
}

// OpenGraph reopens a graph previously built on this System's device —
// typically a disk-backed device (SystemOptions.Dir) whose files survive
// from an earlier process. The edge list for the shard baseline is
// reconstructed from the stored CSR.
func (s *System) OpenGraph(name string, memoryBudget int64) (*Graph, error) {
	if memoryBudget <= 0 {
		memoryBudget = 64 << 20
	}
	g, err := csr.Open(s.dev, name)
	if err != nil {
		return nil, err
	}
	edges, err := g.CurrentEdges()
	if err != nil {
		return nil, err
	}
	out := &Graph{sys: s, g: g, memBudget: memoryBudget}
	if g.HasWeights() {
		// Recover weights alongside destinations.
		var wedges []WeightedEdge
		for iv := range g.Intervals() {
			interval := g.Intervals()[iv]
			verts := make([]uint32, 0, interval.Len())
			for v := interval.Lo; v < interval.Hi; v++ {
				verts = append(verts, v)
			}
			if _, err := g.LoadOutEdgesFull(iv, verts, func(v uint32, nbrs, weights []uint32, _, _ int32) {
				for i, nb := range nbrs {
					w := uint32(1)
					if weights != nil {
						w = weights[i]
					}
					wedges = append(wedges, WeightedEdge{Src: v, Dst: nb, Weight: w})
				}
			}); err != nil {
				return nil, err
			}
		}
		out.wedges = wedges
	} else {
		out.edges = edges
	}
	return out, nil
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() uint32 { return g.g.NumVertices() }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() uint64 { return g.g.NumEdges() }

// Intervals returns the number of vertex intervals the graph was
// partitioned into.
func (g *Graph) Intervals() int { return len(g.g.Intervals()) }

// AddEdge buffers a structural edge addition (§V-E); it is visible to
// subsequent runs immediately and merged into the CSR files lazily. On
// weighted graphs the new edge gets weight 1; use AddWeightedEdge.
func (g *Graph) AddEdge(src, dst uint32) error {
	return g.AddWeightedEdge(src, dst, 1)
}

// AddWeightedEdge is AddEdge with an explicit weight.
func (g *Graph) AddWeightedEdge(src, dst, weight uint32) error {
	if g.g.HasWeights() {
		g.wedges = append(g.wedges, WeightedEdge{Src: src, Dst: dst, Weight: weight})
	} else {
		g.edges = append(g.edges, Edge{Src: src, Dst: dst})
	}
	return g.g.AddEdgeWeighted(src, dst, weight, 0)
}

// RemoveEdge buffers a structural edge removal (§V-E).
func (g *Graph) RemoveEdge(src, dst uint32) error {
	if g.g.HasWeights() {
		for i, e := range g.wedges {
			if e.Src == src && e.Dst == dst {
				g.wedges = append(g.wedges[:i], g.wedges[i+1:]...)
				break
			}
		}
	} else {
		for i, e := range g.edges {
			if e.Src == src && e.Dst == dst {
				g.edges = append(g.edges[:i], g.edges[i+1:]...)
				break
			}
		}
	}
	return g.g.RemoveEdge(src, dst, 0)
}

// Engine selects which execution engine runs a program.
type Engine int

const (
	// EngineMultiLog is the MultiLogVC engine (the paper's system).
	EngineMultiLog Engine = iota
	// EngineGraphChi is the shard-based baseline.
	EngineGraphChi
	// EngineGraFBoost is the single-log baseline (requires a Combiner).
	EngineGraFBoost
	// EngineGraFBoostAdapted is the single log forced to keep all
	// messages, enabling non-combinable programs (§VIII).
	EngineGraFBoostAdapted
)

func (e Engine) String() string {
	switch e {
	case EngineGraphChi:
		return "graphchi"
	case EngineGraFBoost:
		return "grafboost"
	case EngineGraFBoostAdapted:
		return "grafboost-adapted"
	default:
		return "multilogvc"
	}
}

// ParseEngine maps a name to an Engine.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "multilogvc", "mlvc", "":
		return EngineMultiLog, nil
	case "graphchi":
		return EngineGraphChi, nil
	case "grafboost":
		return EngineGraFBoost, nil
	case "grafboost-adapted":
		return EngineGraFBoostAdapted, nil
	}
	return 0, fmt.Errorf("multilogvc: unknown engine %q", name)
}

// RunOptions tunes one program run.
type RunOptions struct {
	// Engine defaults to EngineMultiLog.
	Engine Engine
	// MaxSupersteps defaults to 15, the paper's evaluation cap.
	MaxSupersteps int
	// Workers is the vertex-processing parallelism (defaults to
	// GOMAXPROCS).
	Workers int
	// StopAfter ends the run early; it receives the superstep index and
	// the cumulative number of vertex activations.
	StopAfter func(superstep int, cumProcessed uint64) bool
	// DisableEdgeLog / DisableCombiner / DisableFusing switch off
	// MultiLogVC optimizations (ablations).
	DisableEdgeLog  bool
	DisableCombiner bool
	DisableFusing   bool
	// Async selects MultiLogVC's asynchronous computation model (§V-F):
	// forward updates are delivered within the sending superstep.
	// Fixpoint algorithms (BFS, SSSP, WCC, PageRank) converge in fewer
	// supersteps; phase-structured algorithms (MIS) need synchronous
	// execution. Only the MultiLogVC engine honors it.
	Async bool
	// Trace, when non-nil, records per-superstep and per-stage spans of
	// the run (MultiLogVC engine only). Disabled tracing costs one pointer
	// test per stage.
	Trace *Trace
	// NoPrefetch disables the asynchronous next-interval prefetcher on
	// cached Systems (the cache itself stays active). No effect when the
	// System has no cache or on the baseline engines, which never
	// prefetch.
	NoPrefetch bool
	// CheckpointEvery commits a crash-recovery checkpoint every K
	// superstep boundaries (MultiLogVC engine only); 0 disables it.
	// Checkpoint IO is charged to the device and reported per superstep.
	CheckpointEvery int
	// Resume restarts from the latest valid checkpoint on the device
	// (MultiLogVC engine only). With none present the run starts fresh;
	// if every checkpoint slot is torn or corrupt the run fails with
	// ErrCorruptCheckpoint.
	Resume bool
	// Interrupt, when non-nil, requests graceful shutdown (MultiLogVC
	// engine only): at the next superstep boundary after it closes, the
	// run commits a checkpoint — even with CheckpointEvery 0 — and
	// returns ErrInterrupted.
	Interrupt <-chan struct{}
	// Context, when non-nil, bounds the run: cancellation or a deadline
	// stops it at the next superstep boundary. The MultiLogVC engine
	// commits a checkpoint first and classifies deadline expiry as
	// ErrDeadline (plain cancellation as ErrInterrupted); the baseline
	// engines stop with the context's error wrapped. The device's
	// transient-fault retry backoff also observes it.
	Context context.Context
	// SortBudget overrides the in-memory sort bound in bytes (MultiLogVC
	// engine only); interval logs above it spill through the external
	// sort-group. 0 derives it from the graph's MemoryBudget as usual.
	SortBudget int64
}

// RunResult is a finished run: the report and final vertex values.
type RunResult struct {
	Report *Report
	Values []uint32
}

// Run executes prog on the selected engine.
func (g *Graph) Run(prog Program, opts RunOptions) (*RunResult, error) {
	switch opts.Engine {
	case EngineGraphChi:
		cfg := graphchi.Config{
			MaxSupersteps: opts.MaxSupersteps,
			Workers:       opts.Workers,
			StopAfter:     opts.StopAfter,
			Cache:         g.sys.cache,
			Context:       opts.Context,
		}
		var eng *graphchi.Engine
		if g.g.HasWeights() {
			eng = graphchi.NewWeighted(g.sys.dev, g.g.Name(), g.wedges, g.g.Intervals(), cfg)
		} else {
			eng = graphchi.New(g.sys.dev, g.g.Name(), g.edges, g.g.Intervals(), cfg)
		}
		res, err := eng.Run(prog)
		if err != nil {
			return nil, err
		}
		return &RunResult{Report: res.Report, Values: res.Values}, nil
	case EngineGraFBoost, EngineGraFBoostAdapted:
		eng := grafboost.New(g.g, grafboost.Config{
			MemoryBudget:  g.memBudget,
			MaxSupersteps: opts.MaxSupersteps,
			Workers:       opts.Workers,
			Adapted:       opts.Engine == EngineGraFBoostAdapted,
			StopAfter:     opts.StopAfter,
			Cache:         g.sys.cache,
			Context:       opts.Context,
		})
		res, err := eng.Run(prog)
		if err != nil {
			return nil, err
		}
		return &RunResult{Report: res.Report, Values: res.Values}, nil
	default:
		var pf *pagecache.Prefetcher
		if g.sys.cache != nil && !opts.NoPrefetch {
			pf = pagecache.NewPrefetcher(8)
			defer pf.Close()
		}
		eng := core.New(g.g, core.Config{
			MemoryBudget:    g.memBudget,
			SortBudget:      opts.SortBudget,
			MaxSupersteps:   opts.MaxSupersteps,
			Workers:         opts.Workers,
			StopAfter:       opts.StopAfter,
			DisableEdgeLog:  opts.DisableEdgeLog,
			DisableCombiner: opts.DisableCombiner,
			DisableFusing:   opts.DisableFusing,
			Async:           opts.Async,
			Trace:           opts.Trace,
			Cache:           g.sys.cache,
			Prefetcher:      pf,
			CheckpointEvery: opts.CheckpointEvery,
			Resume:          opts.Resume,
			Interrupt:       opts.Interrupt,
		})
		ctx := opts.Context
		if ctx == nil {
			ctx = context.Background()
		}
		res, err := eng.RunCtx(ctx, prog)
		if err != nil {
			return nil, err
		}
		return &RunResult{Report: res.Report, Values: res.Values}, nil
	}
}

// The six applications the paper evaluates (§VII).

// NewBFS returns single-source BFS from the given source (combinable).
func NewBFS(source uint32) Program { return &apps.BFS{Source: source} }

// BFSUnvisited is the depth of vertices BFS never reached.
const BFSUnvisited = apps.Inf

// NewPageRank returns delta-based PageRank with default damping 0.85 and
// threshold 0.01 (combinable). Use PageRankValue to decode vertex values.
func NewPageRank() Program { return &apps.PageRank{} }

// PageRankValue converts a PageRank vertex value to a float rank.
func PageRankValue(v uint32) float64 { return apps.Rank(v) }

// NewCommunityDetection returns label-propagation community detection
// (non-combinable; per-in-edge state).
func NewCommunityDetection() Program { return &apps.CDLP{} }

// NewColoring returns speculative greedy graph coloring (non-combinable).
func NewColoring() Program { return &apps.Coloring{} }

// NewMIS returns Luby-style maximal independent set with a deterministic
// seed (non-combinable). Values: 1 = in set, 2 = out.
func NewMIS(seed uint64) Program { return &apps.MIS{Seed: seed} }

// MIS vertex states.
const (
	MISIn  = apps.MISIn
	MISOut = apps.MISOut
)

// NewRandomWalk returns DrunkardMob-style random walks: one walker per
// sampleEvery-th vertex, up to walkLength steps (non-combinable). Values
// are visit counts.
func NewRandomWalk(sampleEvery, walkLength uint32, seed uint64) Program {
	return &apps.RandomWalk{SampleEvery: sampleEvery, WalkLength: walkLength, Seed: seed}
}

// NewSSSP returns single-source shortest paths over edge weights
// (combinable). On unweighted graphs it degenerates to BFS.
func NewSSSP(source uint32) Program { return &apps.SSSP{Source: source} }

// NewWCC returns weakly-connected-component labeling by HashMin
// (combinable). Final values are component labels.
func NewWCC() Program { return &apps.WCC{} }

// NewKCore returns iterative k-core peeling (combinable). Use KCoreMember
// to decode final values.
func NewKCore(k uint32) Program { return &apps.KCore{K: k} }

// KCoreMember reports whether a final NewKCore vertex value denotes core
// membership.
func KCoreMember(value uint32) bool { return apps.InCore(value) }

// Graph generators and IO.

// RMAT generates a power-law graph with 2^scale vertices and
// edgeFactor×2^scale directed edges (Graph500 parameters), symmetrized.
func RMAT(scale, edgeFactor int, seed int64) ([]Edge, error) {
	return gen.RMAT(gen.DefaultRMAT(scale, edgeFactor, seed))
}

// Uniform generates an Erdős–Rényi-style graph.
func Uniform(n uint32, m int, seed int64) ([]Edge, error) {
	return gen.Uniform(n, m, seed, true)
}

// Grid generates a rows×cols 2-D grid graph.
func Grid(rows, cols int) ([]Edge, error) { return gen.Grid(rows, cols) }

// PlantedPartition generates a graph with planted communities; see the
// communities example.
func PlantedPartition(groups, size int, degIn, degOut float64, seed int64) ([]Edge, error) {
	return gen.PlantedPartition(groups, size, degIn, degOut, seed)
}

// MakeUndirected returns the symmetric closure of edges with self-loops
// and duplicates removed.
func MakeUndirected(edges []Edge) []Edge { return graphio.MakeUndirected(edges) }

// RandomWeights attaches deterministic pseudo-random weights in
// [1, maxWeight] to edges; the weight of (u,v) equals the weight of
// (v,u), so symmetric closures stay consistent.
func RandomWeights(edges []Edge, maxWeight uint32, seed uint64) []WeightedEdge {
	if maxWeight == 0 {
		maxWeight = 16
	}
	return graphio.AttachWeights(edges, func(s, d uint32) uint32 {
		if s > d {
			s, d = d, s
		}
		return uint32(vc.Hash64(seed, uint64(s), uint64(d))%uint64(maxWeight)) + 1
	})
}

// ReadEdgeListFile loads a SNAP-style text edge list or the binary format
// written by WriteEdgeListFile (detected by extension ".bin").
func ReadEdgeListFile(path string) ([]Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if len(path) > 4 && path[len(path)-4:] == ".bin" {
		return graphio.ReadBinary(f)
	}
	return graphio.ReadText(f)
}

// WriteEdgeListFile writes edges as text, or binary when path ends in
// ".bin".
func WriteEdgeListFile(path string, edges []Edge) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if len(path) > 4 && path[len(path)-4:] == ".bin" {
		return graphio.WriteBinary(f, edges)
	}
	return graphio.WriteText(f, edges)
}

// ProgramOptions parameterizes NewProgramByName.
type ProgramOptions struct {
	// Source is the start vertex for bfs and sssp.
	Source uint32
	// Seed drives randomized programs (mis, randomwalk).
	Seed uint64
	// SampleEvery launches one walker per k vertices (randomwalk);
	// defaults to 1000.
	SampleEvery uint32
	// WalkLength caps walk steps (randomwalk); defaults to 10.
	WalkLength uint32
	// K is the minimum core degree (kcore); defaults to 3.
	K uint32
}

// ProgramNames lists the names NewProgramByName accepts.
func ProgramNames() []string {
	return []string{"bfs", "pagerank", "cdlp", "coloring", "mis", "randomwalk", "sssp", "wcc", "kcore"}
}

// NewProgramByName constructs one of the bundled programs by its CLI name.
func NewProgramByName(name string, opts ProgramOptions) (Program, error) {
	if opts.SampleEvery == 0 {
		opts.SampleEvery = 1000
	}
	if opts.WalkLength == 0 {
		opts.WalkLength = 10
	}
	if opts.K == 0 {
		opts.K = 3
	}
	switch name {
	case "bfs":
		return NewBFS(opts.Source), nil
	case "pagerank":
		return NewPageRank(), nil
	case "cdlp":
		return NewCommunityDetection(), nil
	case "coloring":
		return NewColoring(), nil
	case "mis":
		return NewMIS(opts.Seed), nil
	case "randomwalk":
		return NewRandomWalk(opts.SampleEvery, opts.WalkLength, opts.Seed), nil
	case "sssp":
		return NewSSSP(opts.Source), nil
	case "wcc":
		return NewWCC(), nil
	case "kcore":
		return NewKCore(opts.K), nil
	}
	return nil, fmt.Errorf("multilogvc: unknown program %q (have %v)", name, ProgramNames())
}
