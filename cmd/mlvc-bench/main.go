// Command mlvc-bench regenerates every table and figure of the paper's
// evaluation section on scaled-down dataset analogs (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	mlvc-bench -size small -exp all
//	mlvc-bench -size tiny  -exp fig5,fig6
//	mlvc-bench -exp all -out results.txt
//	mlvc-bench -exp fig6 -json reports/ -listen :6060
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"multilogvc/internal/harness"
	"multilogvc/internal/metrics"
	"multilogvc/internal/obsv"
)

func main() {
	size := flag.String("size", "small", "dataset scale: tiny, small, medium")
	exps := flag.String("exp", "all", "comma-separated experiments: table1,fig2,fig3,fig5,fig6,fig7,fig8,fig9,fig10,adapted,ablation,extended,iobreakdown,checkpoint,integrity,spill")
	out := flag.String("out", "", "also write results to this file")
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	jsonDir := flag.String("json", "", "write every engine run's report as JSON into this directory")
	listen := flag.String("listen", "", "serve expvar live metrics and pprof on this address (e.g. :6060)")
	cacheMB := flag.Int("cache-mb", 0, "attach a page cache of this size (MiB) to every experiment device; 0 (default) runs uncached")
	flag.Parse()

	harness.DefaultCacheMB = *cacheMB

	if *listen != "" {
		addr, _, err := obsv.Serve(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlvc-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("debug endpoint on http://%s/debug/vars (pprof at /debug/pprof/)\n", addr)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mlvc-bench:", err)
			os.Exit(1)
		}
		seq := 0
		harness.ReportSink = func(r *metrics.Report) {
			seq++
			data, err := r.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mlvc-bench: json report:", err)
				return
			}
			name := fmt.Sprintf("%04d-%s-%s-%s.json", seq, r.Engine, r.App, r.Graph)
			if err := os.WriteFile(filepath.Join(*jsonDir, name), append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "mlvc-bench: json report:", err)
			}
		}
	}

	var sz harness.Size
	switch *size {
	case "tiny":
		sz = harness.Tiny
	case "small":
		sz = harness.Small
	case "medium":
		sz = harness.Medium
	default:
		fmt.Fprintf(os.Stderr, "mlvc-bench: unknown size %q\n", *size)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlvc-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	writeCSV := func(name string, t *metrics.Table) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mlvc-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mlvc-bench:", err)
			os.Exit(1)
		}
	}

	run := func(name string, fn func() (*metrics.Table, error)) {
		if !sel(name) {
			return
		}
		start := time.Now()
		t, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlvc-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\n(%s, generated in %.1fs)\n\n", t, *size, time.Since(start).Seconds())
		writeCSV(name, t)
	}

	run("table1", func() (*metrics.Table, error) { return harness.Table1(sz) })
	run("fig2", func() (*metrics.Table, error) { return harness.Fig2(sz) })
	run("fig3", func() (*metrics.Table, error) { return harness.Fig3(sz) })
	run("fig5", func() (*metrics.Table, error) { return harness.Fig5(sz) })

	if sel("fig6") || sel("fig7") {
		start := time.Now()
		runs, err := harness.Fig6Runs(sz)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlvc-bench: fig6:", err)
			os.Exit(1)
		}
		if sel("fig6") {
			t := harness.Fig6(runs)
			fmt.Fprintf(w, "%s\n(%s, generated in %.1fs)\n\n", t, *size, time.Since(start).Seconds())
			writeCSV("fig6", t)
		}
		if sel("fig7") {
			t := harness.Fig7(runs)
			fmt.Fprintf(w, "%s\n\n", t)
			writeCSV("fig7", t)
		}
	}

	run("fig8", func() (*metrics.Table, error) { return harness.Fig8(sz) })
	run("adapted", func() (*metrics.Table, error) { return harness.AdaptedGC(sz) })
	run("fig9", func() (*metrics.Table, error) { return harness.Fig9(sz) })
	run("fig10", func() (*metrics.Table, error) { return harness.Fig10(sz) })
	run("ablation", func() (*metrics.Table, error) { return harness.Ablation(sz) })
	run("extended", func() (*metrics.Table, error) { return harness.Extended(sz) })
	run("iobreakdown", func() (*metrics.Table, error) { return harness.IOBreakdown(sz) })
	run("checkpoint", func() (*metrics.Table, error) { return harness.CheckpointOverhead(sz) })
	run("integrity", func() (*metrics.Table, error) { return harness.Integrity(sz) })
	run("spill", func() (*metrics.Table, error) { return harness.SpillOverhead(sz) })
}
