// Command mlvc-bench regenerates every table and figure of the paper's
// evaluation section on scaled-down dataset analogs (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results), and maintains
// the continuous-benchmarking snapshots CI gates on.
//
// Usage:
//
//	mlvc-bench -size small -exp all
//	mlvc-bench -size tiny  -exp fig5,fig6
//	mlvc-bench -exp all -out results.txt
//	mlvc-bench -exp fig6 -json reports/ -listen :6060
//	mlvc-bench -size small -snapshot BENCH_small.json
//	mlvc-bench -size small -check BENCH_small.json
//	mlvc-bench -size small -check BENCH_small.json -fresh fresh.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"multilogvc/internal/harness"
	"multilogvc/internal/metrics"
	"multilogvc/internal/obsv"
)

// experiment is one registry row: the single source of truth both the
// -exp help text and the dispatch loop derive from, so adding an
// experiment is one entry here — the flag description, selection, and
// execution can never drift apart again.
type experiment struct {
	name string
	desc string
	run  func(b *benchCtx) (*metrics.Table, error)
}

// benchCtx carries the run configuration and memoizes expensive shared
// state (fig6/fig7 share one run set).
type benchCtx struct {
	size     harness.Size
	fig6Runs []harness.Fig6Result
	fig6Err  error
	fig6Done bool
}

func (b *benchCtx) sharedFig6Runs() ([]harness.Fig6Result, error) {
	if !b.fig6Done {
		b.fig6Runs, b.fig6Err = harness.Fig6Runs(b.size)
		b.fig6Done = true
	}
	return b.fig6Runs, b.fig6Err
}

var experiments = []experiment{
	{"table1", "Table I: dataset inventory", func(b *benchCtx) (*metrics.Table, error) { return harness.Table1(b.size) }},
	{"fig2", "Fig 2: active vertices/edges per superstep (coloring)", func(b *benchCtx) (*metrics.Table, error) { return harness.Fig2(b.size) }},
	{"fig3", "Fig 3: inefficiently used page fraction per app", func(b *benchCtx) (*metrics.Table, error) { return harness.Fig3(b.size) }},
	{"fig5", "Fig 5: partial-BFS speedup and page-access ratio", func(b *benchCtx) (*metrics.Table, error) { return harness.Fig5(b.size) }},
	{"fig6", "Fig 6: end-to-end speedups over GraphChi", func(b *benchCtx) (*metrics.Table, error) {
		runs, err := b.sharedFig6Runs()
		if err != nil {
			return nil, err
		}
		return harness.Fig6(runs), nil
	}},
	{"fig7", "Fig 7: page-access ratios of the fig6 runs", func(b *benchCtx) (*metrics.Table, error) {
		runs, err := b.sharedFig6Runs()
		if err != nil {
			return nil, err
		}
		return harness.Fig7(runs), nil
	}},
	{"fig8", "Fig 8: GraFBoost comparison (mergeable apps)", func(b *benchCtx) (*metrics.Table, error) { return harness.Fig8(b.size) }},
	{"adapted", "GraFBoost adapted-mode graph coloring", func(b *benchCtx) (*metrics.Table, error) { return harness.AdaptedGC(b.size) }},
	{"fig9", "Fig 9: memory-budget sensitivity", func(b *benchCtx) (*metrics.Table, error) { return harness.Fig9(b.size) }},
	{"fig10", "Fig 10: SSSP on weighted graphs", func(b *benchCtx) (*metrics.Table, error) { return harness.Fig10(b.size) }},
	{"ablation", "edge-log / combiner / fusing ablations", func(b *benchCtx) (*metrics.Table, error) { return harness.Ablation(b.size) }},
	{"extended", "extended app set beyond the paper", func(b *benchCtx) (*metrics.Table, error) { return harness.Extended(b.size) }},
	{"iobreakdown", "device traffic by storage structure", func(b *benchCtx) (*metrics.Table, error) { return harness.IOBreakdown(b.size) }},
	{"stageio", "device traffic by pipeline stage (serial-time attribution)", func(b *benchCtx) (*metrics.Table, error) { return harness.StageBreakdown(b.size) }},
	{"checkpoint", "checkpoint overhead at K=0/1/5", func(b *benchCtx) (*metrics.Table, error) { return harness.CheckpointOverhead(b.size) }},
	{"integrity", "page-checksum overhead", func(b *benchCtx) (*metrics.Table, error) { return harness.Integrity(b.size) }},
	{"spill", "sort-budget spill overhead", func(b *benchCtx) (*metrics.Table, error) { return harness.SpillOverhead(b.size) }},
	{"serving", "multi-source query batching: pages/query at batch 1/4/16", func(b *benchCtx) (*metrics.Table, error) { return harness.Serving(b.size) }},
	{"isolation", "batch fault isolation: clean batch vs solos vs isolation event", func(b *benchCtx) (*metrics.Table, error) { return harness.IsolationCost(b.size) }},
	{"ingest", "streaming-ingest throughput and WAL durability overhead", func(b *benchCtx) (*metrics.Table, error) { return harness.Ingest(b.size) }},
	{"replication", "follower catch-up rate and failover window", func(b *benchCtx) (*metrics.Table, error) { return harness.Replication(b.size) }},
}

func expNames() string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return strings.Join(names, ",")
}

func expHelp() string {
	var sb strings.Builder
	sb.WriteString("comma-separated experiments (or \"all\"):\n")
	for _, e := range experiments {
		fmt.Fprintf(&sb, "  %-12s %s\n", e.name, e.desc)
	}
	return sb.String()
}

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"mlvc-bench:"}, args...)...)
	os.Exit(1)
}

func main() {
	size := flag.String("size", "small", "dataset scale: tiny, small, medium")
	exps := flag.String("exp", "all", expHelp())
	out := flag.String("out", "", "also write results to this file")
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	jsonDir := flag.String("json", "", "write every engine run's report as JSON into this directory")
	listen := flag.String("listen", "", "serve expvar live metrics (/debug/vars), OpenMetrics (/metrics), and pprof on this address (e.g. :6060)")
	cacheMB := flag.Int("cache-mb", 0, "attach a page cache of this size (MiB) to every experiment device; 0 (default) runs uncached")
	snapshot := flag.String("snapshot", "", "run the benchmark suite and write a perf snapshot (e.g. BENCH_small.json), then exit unless -exp is also set")
	check := flag.String("check", "", "diff a fresh snapshot against this baseline; exit 1 on deterministic regressions")
	freshPath := flag.String("fresh", "", "with -check: load the fresh snapshot from this file instead of re-running the suite")
	flag.Parse()

	harness.DefaultCacheMB = *cacheMB

	if *listen != "" {
		addr, _, err := obsv.Serve(*listen)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug endpoint on http://%s/debug/vars (OpenMetrics at /metrics, pprof at /debug/pprof/)\n", addr)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fatal(err)
		}
		seq := 0
		harness.ReportSink = func(r *metrics.Report) {
			seq++
			data, err := r.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mlvc-bench: json report:", err)
				return
			}
			name := fmt.Sprintf("%04d-%s-%s-%s.json", seq, r.Engine, r.App, r.Graph)
			if err := os.WriteFile(filepath.Join(*jsonDir, name), append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "mlvc-bench: json report:", err)
			}
		}
	}

	var sz harness.Size
	switch *size {
	case "tiny":
		sz = harness.Tiny
	case "small":
		sz = harness.Small
	case "medium":
		sz = harness.Medium
	default:
		fmt.Fprintf(os.Stderr, "mlvc-bench: unknown size %q\n", *size)
		os.Exit(2)
	}

	// Snapshot / regression-gate mode.
	if *snapshot != "" || *check != "" {
		runSnapshotMode(sz, *snapshot, *check, *freshPath)
		// Snapshot mode replaces the experiment sweep unless experiments
		// were explicitly requested alongside it.
		explicitExp := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "exp" {
				explicitExp = true
			}
		})
		if !explicitExp {
			return
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		name := strings.TrimSpace(e)
		if name == "" {
			continue
		}
		if name != "all" {
			known := false
			for _, exp := range experiments {
				if exp.name == name {
					known = true
					break
				}
			}
			if !known {
				fmt.Fprintf(os.Stderr, "mlvc-bench: unknown experiment %q (known: all,%s)\n", name, expNames())
				os.Exit(2)
			}
		}
		want[name] = true
	}
	all := want["all"]

	writeCSV := func(name string, t *metrics.Table) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			fatal(err)
		}
	}

	b := &benchCtx{size: sz}
	for _, exp := range experiments {
		if !all && !want[exp.name] {
			continue
		}
		start := time.Now()
		t, err := exp.run(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlvc-bench: %s: %v\n", exp.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\n(%s, generated in %.1fs)\n\n", t, *size, time.Since(start).Seconds())
		writeCSV(exp.name, t)
	}
}

// runSnapshotMode takes (or loads) a fresh benchmark snapshot, optionally
// writes it, and optionally gates it against a committed baseline.
func runSnapshotMode(sz harness.Size, snapshotPath, checkPath, freshPath string) {
	var fresh *harness.Snapshot
	var err error
	if freshPath != "" {
		fresh, err = harness.LoadSnapshot(freshPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded fresh snapshot from %s (%d entries)\n", freshPath, len(fresh.Entries))
	} else {
		start := time.Now()
		fresh, err = harness.TakeSnapshot(sz)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("benchmark suite: %d runs in %.1fs\n", len(fresh.Entries), time.Since(start).Seconds())
	}

	if snapshotPath != "" {
		if err := fresh.WriteFile(snapshotPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote snapshot %s\n", snapshotPath)
	}

	if checkPath == "" {
		return
	}
	base, err := harness.LoadSnapshot(checkPath)
	if err != nil {
		fatal(err)
	}
	d := harness.Compare(base, fresh, harness.DiffOptions{})
	sort.Strings(d.Warnings)
	for _, w := range d.Warnings {
		fmt.Printf("WARN  %s\n", w)
	}
	sort.Strings(d.Regressions)
	for _, r := range d.Regressions {
		fmt.Printf("FAIL  %s\n", r)
	}
	if !d.OK() {
		fmt.Printf("regression gate: %d regression(s) against %s\n", len(d.Regressions), checkPath)
		os.Exit(1)
	}
	fmt.Printf("regression gate: clean against %s (%d warnings)\n", checkPath, len(d.Warnings))
}
