// Command mlvcd serves point queries over one resident graph: a
// long-running daemon that opens a built device directory, attaches a
// shared page cache, and answers concurrent BFS/SSSP/random-walk queries
// over HTTP/JSON. Compatible point queries arriving within the batching
// window coalesce into one multi-source engine execution with per-query
// results bit-identical to individual runs.
//
// Usage:
//
//	mlvc build -graph graph.bin -dir /data/dev        # once
//	mlvcd -dir /data/dev -addr :8080 -cache-mb 64     # serve
//
//	curl -X POST :8080/query/bfs  -d '{"source":3,"targets":[7,100]}'
//	curl -X POST :8080/query/sssp -d '{"source":9,"deadline_ms":500}'
//	curl -X POST :8080/walk       -d '{"source":3,"walks":4,"length":8}'
//	curl :8080/graph  ·  curl :8080/stats  ·  curl :8080/metrics
//
// With -ingest the daemon also accepts durable streaming mutations
// (WAL-backed; acknowledged mutations survive kill -9) and ships its WAL
// to followers via GET /replicate:
//
//	mlvcd -dir /data/dev -addr :8080 -ingest
//	curl -X POST :8080/mutate -d '{"mutations":[{"op":"add","src":3,"dst":9}]}'
//
// With -follow the daemon is a warm-standby replica: it bootstraps from
// its own device directory (seed it from a copy of the primary's), tails
// the primary's WAL, serves read queries the whole time, and rejects
// /mutate with a structured read_only error until promoted:
//
//	mlvcd -dir /data/standby -addr :8081 -follow http://primary:8080
//	curl -X POST :8081/admin/promote        # manual failover
//	mlvcd ... -follow ... -promote-on-disconnect 10s   # automatic failover
//
// SIGINT/SIGTERM drains gracefully: in-flight batches finish, new
// queries are shed with a structured shutting_down error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"multilogvc/internal/csr"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/serve"
	"multilogvc/internal/ssd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mlvcd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mlvcd", flag.ExitOnError)
	dir := fs.String("dir", "", "device directory built with `mlvc build` (required)")
	name := fs.String("name", "g", "graph name inside the device")
	addr := fs.String("addr", ":8080", "listen address")
	pageSize := fs.Int("page", 16384, "SSD page size the device was built with")
	channels := fs.Int("channels", 8, "SSD channels")
	cacheMB := fs.Int("cache-mb", 64, "shared page-cache size in MiB; 0 serves uncached")
	mem := fs.Int64("mem", 64<<20, "per-execution engine memory budget (bytes)")
	steps := fs.Int("steps", 100, "max supersteps per query execution")
	window := fs.Duration("batch-window", 2*time.Millisecond, "query batching window")
	maxBatch := fs.Int("max-batch", 16, "max queries per batched execution")
	maxConc := fs.Int("max-concurrent", 2, "max simultaneous engine executions")
	maxQueue := fs.Int("max-queue", 64, "max admitted-but-unfinished queries; beyond it queries are shed")
	deadline := fs.Duration("deadline", 30*time.Second, "default per-query deadline")
	retries := fs.Int("retries", 0, "max retries per transient device fault; 0 = default (3), -1 disables")
	diskCap := fs.Int64("disk-cap", 0, "device byte quota; query scratch past it is shed with no_space (0 = unlimited)")
	brkWindow := fs.Int("breaker-window", 32, "fault circuit breaker: sliding window in query outcomes")
	brkThreshold := fs.Float64("breaker-threshold", 0.5, "fault circuit breaker: windowed fault rate that opens it")
	brkMin := fs.Int("breaker-min", 8, "fault circuit breaker: min outcomes before it may open")
	brkCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "fault circuit breaker: open duration before half-open probes")
	brkProbes := fs.Int("breaker-probes", 2, "fault circuit breaker: half-open probe concurrency (and successes to close)")
	ingest := fs.Bool("ingest", false, "enable durable streaming ingest: WAL-backed POST /mutate (also serves GET /replicate to followers)")
	follow := fs.String("follow", "", "run as a read-only follower tailing this primary URL (implies -ingest durability for the local WAL)")
	replicaPoll := fs.Duration("replica-poll", 50*time.Millisecond, "follower: idle poll interval against the primary")
	replicaBatch := fs.Int("replica-batch", 4096, "follower: max WAL frames per catch-up fetch")
	replicaLag := fs.Int64("replica-lag", 256, "follower: /readyz flips 503 when lag exceeds this many frames (-1: any lag is unready)")
	promoteOnDisc := fs.Duration("promote-on-disconnect", 0, "follower: auto-promote to writable after this long without primary contact (0 = manual /admin/promote only)")
	walFlush := fs.Duration("wal-flush", 2*time.Millisecond, "WAL group-commit window; 0 flushes synchronously per batch")
	maxPending := fs.Int("max-pending", 1<<20, "buffered delta side-entry cap; past it /mutate sheds with ingest_backpressure (0 = unbounded)")
	mergeThreshold := fs.Int("merge-threshold", 0, "buffered side-entries that trigger a crash-atomic delta merge (0 = library default)")
	faultInject := fs.Bool("fault-inject", false,
		"TESTING ONLY: honor MLVCD_FAULT_{TRANSIENT,CORRUPT,NOSPACE}_PROB / MLVCD_FAULT_CORRUPT_ONLY / MLVCD_FAULT_SEED env vars and expose POST /debug/fault")
	fs.Parse(args)
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("-dir is required")
	}

	dev, err := ssd.Open(ssd.Config{
		PageSize: *pageSize, Channels: *channels, Dir: *dir,
		Capacity: *diskCap, Retry: ssd.RetryPolicy{MaxRetries: *retries},
	})
	if err != nil {
		return err
	}
	var cache *pagecache.Cache
	if c := pagecache.FromMB(*cacheMB, dev.PageSize()); c != nil {
		dev.AttachCache(c)
		cache = c
	}
	follower := *follow != ""
	if follower {
		// A follower needs the full durable ingest plane: its own WAL (the
		// shipped frames are re-logged at their original seqs), replay,
		// and crash-atomic merges.
		*ingest = true
	}
	var g *csr.Graph
	if *ingest {
		g, err = csr.OpenIngest(dev, *name, csr.IngestOptions{
			WAL:            true,
			FlushEvery:     *walFlush,
			MaxPending:     *maxPending,
			MergeThreshold: *mergeThreshold,
		})
	} else {
		g, err = csr.Open(dev, *name)
	}
	if err != nil {
		return err
	}
	fmt.Printf("mlvcd: opened %q: %d vertices, %d edges, %d intervals\n",
		*name, g.NumVertices(), g.NumEdges(), len(g.Intervals()))
	if *ingest {
		if st := g.IngestStats(); st.WAL.Replayed > 0 || st.WAL.TornTails > 0 {
			fmt.Printf("mlvcd: WAL replayed %d mutations (%d torn tails truncated)\n",
				st.WAL.Replayed, st.WAL.TornTails)
		}
	}

	// Fault injection arms AFTER the graph is opened (the open itself
	// must not trip) and only when explicitly enabled: this is the CI
	// fault smoke's control surface, never a production mode.
	if *faultInject {
		armFaultsFromEnv(dev)
	}

	s, err := serve.New(serve.Options{
		Graph:             g,
		Cache:             cache,
		BatchWindow:       *window,
		MaxBatch:          *maxBatch,
		MaxConcurrent:     *maxConc,
		MaxQueue:          *maxQueue,
		DefaultDeadline:   *deadline,
		MaxSupersteps:     *steps,
		MemoryBudget:      *mem,
		BreakerWindow:     *brkWindow,
		BreakerThreshold:  *brkThreshold,
		BreakerMinSamples: *brkMin,
		BreakerCooldown:   *brkCooldown,
		BreakerProbes:     *brkProbes,
		EnableIngest:      *ingest,
		MergeThreshold:    *mergeThreshold,
		EnableReplication: *ingest,
		ReadOnly:          follower,
		FaultControl:      *faultInject,
	})
	if err != nil {
		return err
	}

	var fol *serve.Follower
	if follower {
		fol, err = s.StartFollower(serve.FollowerOptions{
			Primary:             *follow,
			Poll:                *replicaPoll,
			BatchMax:            *replicaBatch,
			LagThreshold:        *replicaLag,
			PromoteOnDisconnect: *promoteOnDisc,
		})
		if err != nil {
			return err
		}
		fmt.Printf("mlvcd: following %s from seq %d (poll %s, lag threshold %d, promote-on-disconnect %s)\n",
			*follow, g.AppliedSeq(), *replicaPoll, *replicaLag, *promoteOnDisc)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("mlvcd: serving on http://%s (POST /query/bfs /query/sssp /walk; GET /graph /stats /metrics)\n",
		ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mlvcd: %v received; draining\n", sig)
	case err := <-errc:
		return err
	}

	// Drain: stop accepting connections, shed new queries, finish
	// in-flight batches, then exit cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if fol != nil {
		fol.Stop()
	}
	s.Close()
	// Flush the last WAL group-commit window; acked mutations are already
	// durable, this only hurries any batch still inside its window.
	if err := g.CloseIngest(); err != nil {
		fmt.Fprintf(os.Stderr, "mlvcd: WAL close: %v\n", err)
	}
	fmt.Println("mlvcd: drained; bye")
	return nil
}

// armFaultsFromEnv arms the device's probabilistic fault injection from
// MLVCD_FAULT_* env vars (testing only; see -fault-inject). Unset or
// malformed vars are ignored.
func armFaultsFromEnv(dev *ssd.Device) {
	seed := uint64(1)
	if v, err := strconv.ParseUint(os.Getenv("MLVCD_FAULT_SEED"), 10, 64); err == nil && v > 0 {
		seed = v
	}
	if only := os.Getenv("MLVCD_FAULT_CORRUPT_ONLY"); only != "" {
		dev.CorruptOnly(only)
	}
	if p, err := strconv.ParseFloat(os.Getenv("MLVCD_FAULT_TRANSIENT_PROB"), 64); err == nil && p > 0 {
		dev.FailTransientProb(p, seed)
		fmt.Printf("mlvcd: fault injection armed: transient p=%g\n", p)
	}
	if p, err := strconv.ParseFloat(os.Getenv("MLVCD_FAULT_CORRUPT_PROB"), 64); err == nil && p > 0 {
		dev.FailCorruptProb(p, seed|1)
		fmt.Printf("mlvcd: fault injection armed: corrupt p=%g\n", p)
	}
	if p, err := strconv.ParseFloat(os.Getenv("MLVCD_FAULT_NOSPACE_PROB"), 64); err == nil && p > 0 {
		dev.FailNoSpaceProb(p, seed|3)
		fmt.Printf("mlvcd: fault injection armed: no-space p=%g\n", p)
	}
}
