// Command mlvc generates graphs and runs vertex-centric applications on
// the MultiLogVC framework and its baselines.
//
// Usage:
//
//	mlvc gen   -kind rmat -scale 14 -ef 12 -seed 42 -out graph.bin
//	mlvc info  -graph graph.bin
//	mlvc build -graph graph.bin -dir /data/dev
//	mlvc run   -graph graph.bin -app pagerank -engine multilogvc -steps 15
//	mlvc run   -dir /data/dev -name g -app sssp -weighted
//
// Engines: multilogvc (default), graphchi, grafboost, grafboost-adapted.
// Apps: bfs, pagerank, cdlp, coloring, mis, randomwalk, sssp, wcc, kcore.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	multilogvc "multilogvc"
	"multilogvc/internal/graphio"
	"multilogvc/internal/metrics"
	"multilogvc/internal/obsv"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "scrub":
		err = cmdScrub(os.Args[2:])
	case "wal":
		err = cmdWAL(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mlvc: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlvc:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode classifies a failed run so scripts can distinguish fault
// families, with a one-line diagnosis on stderr:
//
//	3  transient retries exhausted — the device recovered too slowly;
//	   raise -retries or rerun
//	4  permanent device fault — the device is gone; rebuild it
//	5  corrupt checkpoint — every committed slot failed validation;
//	   rerun without -resume to recompute
//	6  corrupt data — a page failed its checksum and recovery was not
//	   possible; rebuild the device (or the flagged files) from source
//	7  interrupted — a checkpoint was committed; rerun with -resume
//	8  out of space — the -disk-cap quota held even after reclamation;
//	   raise the quota or shrink the run
//	9  deadline exceeded — the -timeout expired; on the MultiLogVC engine
//	   a checkpoint was committed, so rerun with -resume
//	1  anything else
func exitCode(err error) int {
	switch {
	case errors.Is(err, multilogvc.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "mlvc: run deadline exceeded; rerun with -resume (MultiLogVC engine) or a larger -timeout")
		return 9
	case errors.Is(err, multilogvc.ErrNoSpace):
		fmt.Fprintln(os.Stderr, "mlvc: device out of space after reclamation; raise -disk-cap or shrink the run")
		return 8
	case errors.Is(err, multilogvc.ErrInterrupted):
		fmt.Fprintln(os.Stderr, "mlvc: interrupted; checkpoint committed — rerun with -resume to continue")
		return 7
	case errors.Is(err, multilogvc.ErrRetriesExhausted):
		fmt.Fprintln(os.Stderr, "mlvc: transient retries exhausted; raise -retries or rerun")
		return 3
	case errors.Is(err, multilogvc.ErrCorruptCheckpoint):
		fmt.Fprintln(os.Stderr, "mlvc: checkpoint corrupt beyond recovery; rerun without -resume to recompute")
		return 5
	case errors.Is(err, multilogvc.ErrCorruptData), errors.Is(err, multilogvc.ErrCorruptPage):
		fmt.Fprintln(os.Stderr, "mlvc: corrupt data beyond recovery; rebuild the device or rerun with -checkpoint-every armed")
		return 6
	case errors.Is(err, multilogvc.ErrDeviceFault):
		fmt.Fprintln(os.Stderr, "mlvc: permanent device fault; the device must be rebuilt")
		return 4
	default:
		return 1
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mlvc gen   -kind rmat|uniform|grid -scale N -ef N -seed N -out FILE
  mlvc info  -graph FILE
  mlvc build -graph FILE -dir DIR [-name G] [-mem BYTES] [-weighted]
  mlvc run   -graph FILE -app NAME -engine NAME [-steps N] [-mem BYTES]
             [-source V] [-weighted] [-async] [-k N]
             [-no-edgelog] [-no-combiner] [-per-superstep]
             [-checkpoint-every K] [-resume] [-retries N]
             [-timeout D] [-disk-cap BYTES] [-sort-budget BYTES]
             [-trace out.json] [-json report.json] [-listen :6060]
  mlvc run   -dir DIR -name G -app NAME ...   (reuse a built graph)
  mlvc scrub -dir DIR [-page N] [-channels N]   (verify every page checksum)
  mlvc wal dump -dir DIR [-name G] [-from SEQ] [-limit N]   (inspect the ingest WAL, read-only)

exit codes: 1 generic error, 2 usage, 3 transient retries exhausted,
            4 permanent device fault, 5 corrupt checkpoint,
            6 corrupt data, 7 interrupted (checkpoint committed),
            8 out of space (quota held after reclamation),
            9 deadline exceeded (checkpoint committed)`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "rmat", "generator: rmat, uniform, grid")
	scale := fs.Int("scale", 14, "rmat: log2 of vertex count")
	ef := fs.Int("ef", 12, "rmat: edges per vertex")
	n := fs.Int("n", 10000, "uniform: vertex count")
	m := fs.Int("m", 100000, "uniform: edge count")
	rows := fs.Int("rows", 100, "grid rows")
	cols := fs.Int("cols", 100, "grid cols")
	seed := fs.Int64("seed", 42, "random seed")
	out := fs.String("out", "graph.bin", "output edge list (.bin = binary)")
	fs.Parse(args)

	var edges []multilogvc.Edge
	var err error
	switch *kind {
	case "rmat":
		edges, err = multilogvc.RMAT(*scale, *ef, *seed)
	case "uniform":
		edges, err = multilogvc.Uniform(uint32(*n), *m, *seed)
	case "grid":
		edges, err = multilogvc.Grid(*rows, *cols)
	default:
		return fmt.Errorf("unknown generator %q", *kind)
	}
	if err != nil {
		return err
	}
	if err := multilogvc.WriteEdgeListFile(*out, edges); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d vertices, %d directed edges\n",
		*out, graphio.NumVertices(edges), len(edges))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("graph", "", "edge list file")
	fs.Parse(args)
	edges, err := multilogvc.ReadEdgeListFile(*path)
	if err != nil {
		return err
	}
	n := graphio.NumVertices(edges)
	out := graphio.OutDegrees(edges, n)
	var maxDeg uint32
	isolated := 0
	for _, d := range out {
		if d > maxDeg {
			maxDeg = d
		}
		if d == 0 {
			isolated++
		}
	}
	fmt.Printf("vertices:      %d\n", n)
	fmt.Printf("edges:         %d (directed)\n", len(edges))
	fmt.Printf("avg degree:    %.2f\n", float64(len(edges))/float64(n))
	fmt.Printf("max degree:    %d\n", maxDeg)
	fmt.Printf("zero-out-deg:  %d\n", isolated)
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	path := fs.String("graph", "", "edge list file")
	dir := fs.String("dir", "", "directory backing the device (required)")
	name := fs.String("name", "g", "graph name inside the device")
	mem := fs.Int64("mem", 64<<20, "memory budget (bytes); sizes vertex intervals")
	pageSize := fs.Int("page", 16384, "SSD page size")
	channels := fs.Int("channels", 8, "SSD channels")
	weighted := fs.Bool("weighted", false, "attach deterministic pseudo-random edge weights [1,16]")
	seed := fs.Uint64("seed", 42, "weight seed")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("build requires -dir")
	}
	edges, err := multilogvc.ReadEdgeListFile(*path)
	if err != nil {
		return err
	}
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{
		PageSize: *pageSize, Channels: *channels, Dir: *dir,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	var g *multilogvc.Graph
	if *weighted {
		g, err = sys.BuildWeightedGraph(*name, multilogvc.RandomWeights(edges, 16, *seed), multilogvc.GraphOptions{MemoryBudget: *mem})
	} else {
		g, err = sys.BuildGraph(*name, edges, multilogvc.GraphOptions{MemoryBudget: *mem})
	}
	if err != nil {
		return err
	}
	fmt.Printf("built %q in %s: %d vertices, %d edges, %d intervals (%.2fs)\n",
		*name, *dir, g.NumVertices(), g.NumEdges(), g.Intervals(), time.Since(start).Seconds())
	fmt.Printf("rerun with: mlvc run -dir %s -name %s -app <app>\n", *dir, *name)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	path := fs.String("graph", "", "edge list file")
	dir := fs.String("dir", "", "reuse a device directory built with `mlvc build`")
	name := fs.String("name", "g", "graph name inside the device (with -dir)")
	appName := fs.String("app", "pagerank", "bfs, pagerank, cdlp, coloring, mis, randomwalk, sssp, wcc, kcore")
	engName := fs.String("engine", "multilogvc", "multilogvc, graphchi, grafboost, grafboost-adapted")
	steps := fs.Int("steps", 15, "max supersteps")
	mem := fs.Int64("mem", 64<<20, "memory budget (bytes)")
	pageSize := fs.Int("page", 16384, "SSD page size")
	channels := fs.Int("channels", 8, "SSD channels")
	source := fs.Uint("source", 0, "bfs source vertex")
	sample := fs.Uint("sample", 1000, "randomwalk: one walker per k vertices")
	seed := fs.Uint64("seed", 42, "randomized app seed")
	noEdgeLog := fs.Bool("no-edgelog", false, "disable the edge-log optimizer")
	noCombiner := fs.Bool("no-combiner", false, "disable the combiner fast path")
	async := fs.Bool("async", false, "asynchronous computation model (MultiLogVC only)")
	weighted := fs.Bool("weighted", false, "attach deterministic pseudo-random edge weights [1,16]")
	kcoreK := fs.Uint("k", 3, "kcore: minimum degree k")
	perStep := fs.Bool("per-superstep", false, "print per-superstep stats")
	cacheMB := fs.Int("cache-mb", 0, "page-cache size in MiB; 0 (default) runs uncached")
	noPrefetch := fs.Bool("no-prefetch", false, "disable async next-interval prefetch (cache stays on)")
	retries := fs.Int("retries", 0, "max retries per transient device fault; 0 = default (3), -1 disables")
	timeout := fs.Duration("timeout", 0, "run deadline; expiry commits a checkpoint and exits 9 (0 disables)")
	diskCap := fs.Int64("disk-cap", 0, "device byte quota; writes past it reclaim then exit 8 (0 = unlimited)")
	sortBudget := fs.Int64("sort-budget", 0, "in-memory sort bound (bytes); oversized logs spill to the device (0 = from -mem)")
	ckptEvery := fs.Int("checkpoint-every", 0, "commit a crash-recovery checkpoint every K supersteps; 0 disables")
	resume := fs.Bool("resume", false, "resume from the latest valid checkpoint on the device (requires -dir)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON span trace (Perfetto-loadable)")
	jsonPath := fs.String("json", "", "write the run report as JSON")
	listen := fs.String("listen", "", "serve expvar live metrics and pprof on this address (e.g. :6060)")
	fs.Parse(args)

	if *listen != "" {
		addr, _, err := obsv.Serve(*listen)
		if err != nil {
			return err
		}
		fmt.Printf("debug endpoint on http://%s/debug/vars (pprof at /debug/pprof/)\n", addr)
	}

	engine, err := multilogvc.ParseEngine(*engName)
	if err != nil {
		return err
	}
	prog, err := multilogvc.NewProgramByName(*appName, multilogvc.ProgramOptions{
		Source:      uint32(*source),
		Seed:        *seed,
		SampleEvery: uint32(*sample),
		K:           uint32(*kcoreK),
	})
	if err != nil {
		return err
	}

	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{
		PageSize: *pageSize, Channels: *channels, Dir: *dir, CacheMB: *cacheMB,
		MaxRetries: *retries, DiskCapacity: *diskCap,
	})
	if err != nil {
		return err
	}
	buildStart := time.Now()
	var g *multilogvc.Graph
	if *dir != "" {
		g, err = sys.OpenGraph(*name, *mem)
		if err != nil {
			return err
		}
		fmt.Printf("reopened %q: %d vertices, %d edges, %d intervals (%.2fs)\n",
			*name, g.NumVertices(), g.NumEdges(), g.Intervals(), time.Since(buildStart).Seconds())
	} else {
		edges, err2 := multilogvc.ReadEdgeListFile(*path)
		if err2 != nil {
			return err2
		}
		if *weighted {
			g, err = sys.BuildWeightedGraph("g", multilogvc.RandomWeights(edges, 16, *seed), multilogvc.GraphOptions{MemoryBudget: *mem})
		} else {
			g, err = sys.BuildGraph("g", edges, multilogvc.GraphOptions{MemoryBudget: *mem})
		}
		if err != nil {
			return err
		}
		fmt.Printf("built CSR graph: %d vertices, %d edges, %d intervals (%.2fs)\n",
			g.NumVertices(), g.NumEdges(), g.Intervals(), time.Since(buildStart).Seconds())
	}

	var trace *multilogvc.Trace
	if *tracePath != "" {
		trace = multilogvc.NewTrace()
	}

	// Graceful shutdown: SIGINT/SIGTERM asks the engine to commit a
	// checkpoint at the next superstep boundary and exit (code 7), so
	// the run can be finished later with -resume.
	interrupt := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; ok {
			fmt.Fprintln(os.Stderr, "mlvc: signal received; committing checkpoint at next superstep boundary")
			close(interrupt)
		}
	}()

	runCtx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}

	res, err := g.Run(prog, multilogvc.RunOptions{
		Engine:          engine,
		MaxSupersteps:   *steps,
		DisableEdgeLog:  *noEdgeLog,
		DisableCombiner: *noCombiner,
		Async:           *async,
		Trace:           trace,
		NoPrefetch:      *noPrefetch,
		CheckpointEvery: *ckptEvery,
		Resume:          *resume,
		Interrupt:       interrupt,
		Context:         runCtx,
		SortBudget:      *sortBudget,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.Report)
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d spans to %s (load in ui.perfetto.dev)\n", trace.Len(), *tracePath)
	}
	if *jsonPath != "" {
		data, err := res.Report.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote JSON report to %s\n", *jsonPath)
	}
	if *perStep {
		t := &metrics.Table{
			Title:   "per-superstep",
			Headers: []string{"step", "active", "msgs", "pages r", "pages w", "storage", "compute"},
		}
		for _, ss := range res.Report.Supersteps {
			t.AddRow(fmt.Sprint(ss.Superstep), fmt.Sprint(ss.Active),
				fmt.Sprint(ss.MsgsSent), fmt.Sprint(ss.PagesRead),
				fmt.Sprint(ss.PagesWritten), metrics.D(ss.StorageTime), metrics.D(ss.ComputeTime))
		}
		fmt.Print(t)
	}
	return nil
}

// cmdScrub verifies every allocated page of a built device directory
// against its recorded checksum — the offline integrity audit to run
// before trusting (or resuming) a device that sat on real flash. Exits 6
// when any page fails.
func cmdScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	dir := fs.String("dir", "", "device directory to verify (required)")
	pageSize := fs.Int("page", 16384, "SSD page size the device was built with")
	channels := fs.Int("channels", 8, "SSD channels")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("scrub requires -dir")
	}
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{
		PageSize: *pageSize, Channels: *channels, Dir: *dir,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	results, err := sys.Device().Scrub()
	if err != nil {
		return err
	}
	var pages, unverified, badPages, badFiles int
	for _, r := range results {
		pages += r.Pages
		unverified += r.Unverified
		if !r.OK() {
			badFiles++
			badPages += len(r.Corrupt)
			fmt.Printf("CORRUPT %s: pages %v\n", r.File, r.Corrupt)
		}
	}
	fmt.Printf("scrubbed %d files, %d pages (%d unverified) in %.2fs: %d corrupt pages in %d files\n",
		len(results), pages, unverified, time.Since(start).Seconds(), badPages, badFiles)
	if badPages > 0 {
		return fmt.Errorf("%w: %d corrupt pages on device %s", multilogvc.ErrCorruptPage, badPages, *dir)
	}
	fmt.Println("device is clean")
	return nil
}
