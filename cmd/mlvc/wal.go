package main

import (
	"flag"
	"fmt"

	"multilogvc/internal/ssd"
	"multilogvc/internal/wal"
)

// cmdWAL dispatches `mlvc wal <subcommand>`; dump is the only one so far.
func cmdWAL(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("wal requires a subcommand: dump")
	}
	switch args[0] {
	case "dump":
		return cmdWALDump(args[1:])
	default:
		return fmt.Errorf("unknown wal subcommand %q (want dump)", args[0])
	}
}

// cmdWALDump prints a built graph's ingest WAL frame by frame — the
// offline inspection tool for debugging replication lag, torn tails, and
// replay disputes. Strictly read-only: it opens the raw log file and
// decodes it, unlike wal.Open, which truncates a torn tail in place as a
// side effect of replay. Safe to run against a live primary's directory
// copy or a crashed node's device before deciding whether to re-seed.
func cmdWALDump(args []string) error {
	fs := flag.NewFlagSet("wal dump", flag.ExitOnError)
	dir := fs.String("dir", "", "device directory built with `mlvc build` (required)")
	name := fs.String("name", "g", "graph name inside the device")
	pageSize := fs.Int("page", 16384, "SSD page size the device was built with")
	channels := fs.Int("channels", 8, "SSD channels")
	from := fs.Uint64("from", 0, "print frames with seq >= this (0 = all)")
	limit := fs.Int("limit", 0, "max frames to print (0 = all)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("wal dump requires -dir")
	}

	dev, err := ssd.Open(ssd.Config{PageSize: *pageSize, Channels: *channels, Dir: *dir})
	if err != nil {
		return err
	}
	walName := *name + ".wal"
	f, err := dev.OpenFile(walName)
	if err != nil {
		return fmt.Errorf("no WAL for graph %q in %s (was it built with ingest enabled?): %w", *name, *dir, err)
	}
	np := f.NumPages()
	buf := make([]byte, np**pageSize)
	if np > 0 {
		if err := f.ReadPageRange(0, np, buf); err != nil {
			return fmt.Errorf("read %s: %w", walName, err)
		}
	}

	recs, consumed, torn := wal.DecodeFrames(buf)
	fmt.Printf("%s: %d pages, %d bytes raw, %d frames in accepted prefix (%d bytes)\n",
		walName, np, len(buf), len(recs), consumed)
	if len(recs) > 0 {
		fmt.Printf("seq range: %d..%d\n", recs[0].Seq, recs[len(recs)-1].Seq)
	}

	printed := 0
	for _, r := range recs {
		if r.Seq < *from {
			continue
		}
		if *limit > 0 && printed >= *limit {
			fmt.Printf("... (limit %d reached)\n", *limit)
			break
		}
		op := "add"
		if r.Op == wal.OpDel {
			op = "del"
		}
		fmt.Printf("seq %8d  %s %d -> %d  w=%d  crc=ok\n", r.Seq, op, r.Src, r.Dst, r.W)
		printed++
	}

	if torn {
		fmt.Printf("TORN TAIL at byte offset %d: %d trailing bytes fail frame validation (CRC, magic, or seq continuity)\n",
			consumed, len(buf)-consumed)
		fmt.Println("these bytes are a partial group commit that never acked; wal replay (mlvcd startup) truncates them")
	} else if consumed < len(buf) {
		fmt.Printf("clean tail: %d zero-padding bytes after the last frame\n", len(buf)-consumed)
	} else {
		fmt.Println("clean tail: stream ends exactly at a frame boundary")
	}
	return nil
}
