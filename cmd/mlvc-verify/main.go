// Command mlvc-verify runs one application on every engine — MultiLogVC,
// GraphChi, GraFBoost (adapted automatically for non-combinable programs)
// and the in-memory reference — and checks that all produce identical
// vertex values. Use it to validate engine changes or custom builds
// against the semantic ground truth.
//
// Usage:
//
//	mlvc-verify -graph graph.bin -app coloring -steps 20
//	mlvc-verify -scale 12 -ef 8 -app all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	multilogvc "multilogvc"
	"multilogvc/internal/graphio"
	"multilogvc/internal/vc"
)

func main() {
	path := flag.String("graph", "", "edge list file (omit to generate R-MAT)")
	scale := flag.Int("scale", 10, "generated R-MAT scale (when -graph omitted)")
	ef := flag.Int("ef", 8, "generated R-MAT edge factor")
	seed := flag.Int64("seed", 42, "generator seed")
	appName := flag.String("app", "all", "app to verify, or 'all'")
	steps := flag.Int("steps", 30, "max supersteps")
	mem := flag.Int64("mem", 1<<20, "memory budget (bytes)")
	pageSize := flag.Int("page", 4096, "SSD page size")
	flag.Parse()

	if err := run(*path, *scale, *ef, *seed, *appName, *steps, *mem, *pageSize); err != nil {
		fmt.Fprintln(os.Stderr, "mlvc-verify:", err)
		os.Exit(1)
	}
}

func run(path string, scale, ef int, seed int64, appName string, steps int, mem int64, pageSize int) error {
	var edges []multilogvc.Edge
	var err error
	if path != "" {
		edges, err = multilogvc.ReadEdgeListFile(path)
	} else {
		edges, err = multilogvc.RMAT(scale, ef, seed)
	}
	if err != nil {
		return err
	}
	n := graphio.NumVertices(edges)
	fmt.Printf("graph: %d vertices, %d edges\n", n, len(edges))

	sample := n / 64
	if sample == 0 {
		sample = 1
	}
	popts := multilogvc.ProgramOptions{Seed: uint64(seed), SampleEvery: sample}
	var names []string
	if appName == "all" {
		names = multilogvc.ProgramNames()
	} else {
		if _, err := multilogvc.NewProgramByName(appName, popts); err != nil {
			return err
		}
		names = []string{appName}
	}

	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: pageSize})
	if err != nil {
		return err
	}
	g, err := sys.BuildGraph("verify", edges, multilogvc.GraphOptions{MemoryBudget: mem})
	if err != nil {
		return err
	}

	failures := 0
	for _, name := range names {
		prog, err := multilogvc.NewProgramByName(name, popts)
		if err != nil {
			return err
		}
		start := time.Now()
		ref := vc.NewRef(edges, n).Run(prog, steps)

		engines := []multilogvc.Engine{multilogvc.EngineMultiLog, multilogvc.EngineGraphChi}
		if _, combinable := prog.(multilogvc.Combiner); combinable {
			engines = append(engines, multilogvc.EngineGraFBoost)
		} else {
			engines = append(engines, multilogvc.EngineGraFBoostAdapted)
		}

		ok := true
		for _, eng := range engines {
			res, err := g.Run(prog, multilogvc.RunOptions{Engine: eng, MaxSupersteps: steps})
			if err != nil {
				return fmt.Errorf("%s on %v: %w", name, eng, err)
			}
			if v, bad := firstMismatch(ref.Values, res.Values); bad {
				fmt.Printf("FAIL %-11s %-18v value[%d] = %d, reference %d\n",
					name, eng, v, res.Values[v], ref.Values[v])
				ok = false
				failures++
			}
		}
		if ok {
			fmt.Printf("OK   %-11s %d engines agree with reference (%d supersteps, %.2fs)\n",
				name, len(engines), ref.Supersteps, time.Since(start).Seconds())
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d engine/app combinations diverged", failures)
	}
	return nil
}

func firstMismatch(want, got []uint32) (int, bool) {
	for v := range want {
		if got[v] != want[v] {
			return v, true
		}
	}
	return 0, false
}
